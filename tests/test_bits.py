"""Unit tests for the low-level bit helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bits import (
    WORD_BITS,
    ctz64,
    hadamard_word,
    popcount_words,
    top_mask,
    words_for_bits,
)


class TestWordsForBits:
    def test_one_bit_needs_one_word(self):
        assert words_for_bits(1) == 1

    def test_exact_word(self):
        assert words_for_bits(64) == 1

    def test_word_plus_one(self):
        assert words_for_bits(65) == 2

    def test_qat_full_scale(self):
        assert words_for_bits(1 << 16) == 1024

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            words_for_bits(0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            words_for_bits(-8)

    @given(st.integers(min_value=1, max_value=1 << 20))
    def test_covers_all_bits(self, nbits):
        words = words_for_bits(nbits)
        assert words * WORD_BITS >= nbits
        assert (words - 1) * WORD_BITS < nbits or words == 1


class TestTopMask:
    def test_full_word(self):
        assert top_mask(64) == np.uint64(0xFFFF_FFFF_FFFF_FFFF)

    def test_multiple_of_64(self):
        assert top_mask(256) == np.uint64(0xFFFF_FFFF_FFFF_FFFF)

    def test_partial(self):
        assert top_mask(4) == np.uint64(0xF)

    def test_single_bit(self):
        assert top_mask(1) == np.uint64(1)

    @given(st.integers(min_value=1, max_value=63))
    def test_partial_popcount(self, rem):
        assert int(top_mask(rem)).bit_count() == rem


class TestCtz64:
    def test_lsb(self):
        assert ctz64(1) == 0

    def test_msb(self):
        assert ctz64(1 << 63) == 63

    def test_mixed(self):
        assert ctz64(0b1011000) == 3

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            ctz64(0)

    @given(st.integers(min_value=0, max_value=63), st.integers(min_value=0, max_value=(1 << 60) - 1))
    def test_matches_reference(self, shift, garbage):
        word = (1 << shift) | ((garbage << (shift + 1)) & 0xFFFF_FFFF_FFFF_FFFF)
        assert ctz64(word) == shift


class TestHadamardWord:
    def test_k0_alternates(self):
        assert hadamard_word(0) == np.uint64(0xAAAA_AAAA_AAAA_AAAA)

    def test_k1_pairs(self):
        assert hadamard_word(1) == np.uint64(0xCCCC_CCCC_CCCC_CCCC)

    def test_k5_halves(self):
        assert hadamard_word(5) == np.uint64(0xFFFF_FFFF_0000_0000)

    def test_bit_semantics(self):
        for k in range(6):
            word = int(hadamard_word(k))
            for e in range(64):
                assert (word >> e) & 1 == (e >> k) & 1

    def test_rejects_k6(self):
        with pytest.raises(ValueError):
            hadamard_word(6)


class TestPopcountWords:
    def test_empty(self):
        assert popcount_words(np.array([], dtype=np.uint64)) == 0

    def test_all_ones_word(self):
        assert popcount_words(np.array([0xFFFF_FFFF_FFFF_FFFF], dtype=np.uint64)) == 64

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), min_size=1, max_size=8))
    def test_matches_python_bitcount(self, values):
        arr = np.array(values, dtype=np.uint64)
        assert popcount_words(arr) == sum(v.bit_count() for v in values)
