"""Persistent shared chunk cache tests (:mod:`repro.pattern.persist`).

The cache changes *when* chunk products are computed, never *what*: the
load-bearing assertions here are byte-identity of campaign reports warm
vs cold across every fan-out strategy, and the corruption drills that
prove a poisoned cache degrades through the store's existing
``chunk_safe``/``degraded`` path instead of changing results.
"""

from __future__ import annotations

import json
import os
import sqlite3
import zlib

import numpy as np
import pytest

from repro.cli import main
from repro.errors import CheckpointError, ReproError
from repro.faults.campaign import render_report, run_campaign
from repro.faults.checkpoint import Checkpoint
from repro.pattern import persist
from repro.pattern.chunkstore import ChunkStore
from repro.pattern.persist import ChunkCache, chunk_digest


def _cache(tmp_path, **kw) -> ChunkCache:
    return ChunkCache(str(tmp_path / "cache.db"), **kw)


def _warm_store(cache, gates: int = 12) -> ChunkStore:
    """Drive a store through a deterministic mix of gate products."""
    from repro.aob import AoB

    store = ChunkStore(8, cache=cache)
    rng = np.random.default_rng(42)
    syms = [
        store.intern(AoB(8, rng.integers(0, 2**64, size=4, dtype=np.uint64)))
        for _ in range(6)
    ]
    for i in range(gates):
        a, b = syms[i % len(syms)], syms[(i * 5 + 1) % len(syms)]
        store.binop("and", a, b)
        store.binop("xor", a, b)
        store.bnot(a)
    return store


class TestChunkCache:
    def test_chunk_roundtrip_and_integrity(self, tmp_path):
        cache = _cache(tmp_path)
        words = np.array([1, 2, 3, 4], dtype=np.uint64)
        digest = chunk_digest(words)
        cache.store_chunk(digest, 8, words)
        cache.flush()
        loaded, status = cache.load_chunk(digest, 8)
        assert status == "ok" and np.array_equal(loaded, words)
        assert cache.has_chunk(digest, 8)
        missing, status = cache.load_chunk("f" * 64, 8)
        assert missing is None and status == "missing"

    def test_corrupt_payload_detected(self, tmp_path):
        cache = _cache(tmp_path)
        words = np.arange(4, dtype=np.uint64)
        digest = chunk_digest(words)
        cache.store_chunk(digest, 8, words)
        cache.flush()
        bad = np.arange(4, 8, dtype=np.uint64).tobytes()
        conn = sqlite3.connect(cache.path)
        conn.execute("UPDATE chunks SET payload = ?", (bad,))
        conn.commit()
        conn.close()
        loaded, status = cache.load_chunk(digest, 8)
        assert loaded is None and status == "corrupt"
        # crc intact but content wrong (second preimage drill): the
        # digest check itself must catch it.
        conn = sqlite3.connect(cache.path)
        conn.execute("UPDATE chunks SET payload = ?, crc = ?",
                     (bad, zlib.crc32(bad)))
        conn.commit()
        conn.close()
        loaded, status = cache.load_chunk(digest, 8)
        assert loaded is None and status == "corrupt"

    def test_memo_roundtrip_first_writer_wins(self, tmp_path):
        cache = _cache(tmp_path)
        cache.store_memo("and", "a" * 64, "b" * 64, 8, "c" * 64)
        cache.flush()
        assert cache.lookup_memo("and", "a" * 64, "b" * 64, 8) == "c" * 64
        assert cache.lookup_memo("and", "b" * 64, "a" * 64, 8) is None
        # INSERT OR IGNORE: a second writer cannot flip the mapping.
        cache.store_memo("and", "a" * 64, "b" * 64, 8, "d" * 64)
        cache.flush()
        assert cache.lookup_memo("and", "a" * 64, "b" * 64, 8) == "c" * 64

    def test_pending_visible_before_flush(self, tmp_path):
        cache = _cache(tmp_path, flush_threshold=10_000)
        words = np.arange(4, dtype=np.uint64)
        digest = chunk_digest(words)
        cache.store_chunk(digest, 8, words)
        cache.store_memo("xor", digest, digest, 8, digest)
        assert cache.has_chunk(digest, 8)
        assert cache.lookup_memo("xor", digest, digest, 8) == digest
        loaded, status = cache.load_chunk(digest, 8)
        assert status == "ok" and np.array_equal(loaded, words)

    def test_flush_threshold_autoflushes(self, tmp_path):
        cache = _cache(tmp_path, flush_threshold=4)
        for i in range(5):
            words = np.array([i], dtype=np.uint64) * np.ones(4, np.uint64)
            cache.store_memo("and", f"{i:064x}", f"{i:064x}", 8,
                             chunk_digest(words))
        assert cache.stats()["pending"] < 5
        assert cache.stats()["memos"] > 0

    def test_schema_version_mismatch_rejected(self, tmp_path):
        cache = _cache(tmp_path)
        cache.flush()
        conn = sqlite3.connect(cache.path)
        conn.execute("PRAGMA user_version = 99")
        conn.commit()
        conn.close()
        fresh = ChunkCache(cache.path)
        with pytest.raises(ReproError, match="version"):
            fresh.has_chunk("a" * 64, 8)

    def test_stats_shape(self, tmp_path):
        cache = _cache(tmp_path)
        words = np.arange(4, dtype=np.uint64)
        cache.store_chunk(chunk_digest(words), 8, words)
        cache.flush()
        stats = cache.stats()
        assert stats["chunks"] == 1 and stats["memos"] == 0
        assert stats["path"] == cache.path and stats["file_bytes"] > 0


class TestModuleActivation:
    def test_flag_beats_env_and_reset_restores(self, tmp_path, monkeypatch):
        monkeypatch.setenv(persist.ENV_VAR, str(tmp_path / "env.db"))
        assert persist.configured_path() == str(tmp_path / "env.db")
        persist.configure(str(tmp_path / "flag.db"))
        assert persist.configured_path() == str(tmp_path / "flag.db")
        persist.reset()
        assert persist.configured_path() == str(tmp_path / "env.db")

    def test_attached_cache_is_shared_and_optional(self, tmp_path):
        assert persist.attached_cache() is None
        persist.configure(str(tmp_path / "c.db"))
        cache = persist.attached_cache()
        assert cache is not None
        assert persist.attached_cache() is cache
        store = ChunkStore(8, cache=persist.attached_cache())
        assert store.cache is cache

    def test_overridden_restores_previous_state(self, tmp_path):
        persist.configure(str(tmp_path / "outer.db"))
        outer = persist.attached_cache()
        with persist.overridden(None):
            assert persist.attached_cache() is None
        assert persist.attached_cache() is outer
        with persist.overridden(str(tmp_path / "inner.db")):
            assert persist.attached_cache().path.endswith("inner.db")
        assert persist.attached_cache() is outer


class TestStoreIntegration:
    def test_cold_then_warm_same_state(self, tmp_path):
        cache = _cache(tmp_path)
        cold = _warm_store(cache)
        cache.flush()
        warm = _warm_store(ChunkCache(cache.path))
        cold_stats, warm_stats = cold.stats(), warm.stats()
        # Identical local surface: same symbols, same gate hit/miss mix.
        for key in ("symbols", "gate_hits", "gate_misses",
                    "binop_cache", "not_cache"):
            assert cold_stats[key] == warm_stats[key], key
        assert cold_stats["cache"]["store"] > 0
        assert cold_stats["cache"]["hit"] == 0
        assert warm_stats["cache"]["hit"] == cold_stats["cache"]["miss"]
        assert warm_stats["cache"]["miss"] == 0
        assert warm_stats["degraded"] == 0
        # Identical chunk payloads symbol by symbol.
        for sym in range(cold_stats["symbols"]):
            assert np.array_equal(cold.chunk(sym).words, warm.chunk(sym).words)

    def test_no_cache_stats_have_no_cache_key(self):
        assert "cache" not in ChunkStore(8).stats()

    def test_corrupt_cache_degrades_and_recomputes(self, tmp_path):
        cache = _cache(tmp_path)
        _warm_store(cache)
        cache.flush()
        conn = sqlite3.connect(cache.path)
        conn.execute("UPDATE chunks SET payload = zeroblob(32)")
        conn.commit()
        conn.close()
        cold = _warm_store(None)
        warm = _warm_store(ChunkCache(cache.path))
        stats = warm.stats()
        assert stats["degraded"] > 0
        assert stats["cache"]["hit"] == 0 and stats["cache"]["miss"] > 0
        # Results still correct: every payload matches the cold store's.
        for sym in range(cold.stats()["symbols"]):
            assert np.array_equal(cold.chunk(sym).words, warm.chunk(sym).words)

    def test_measure_memo_eviction_bounded(self):
        from repro.aob import AoB

        store = ChunkStore(8, memo_limit=4)
        rng = np.random.default_rng(7)
        syms = [
            store.intern(AoB(8, rng.integers(0, 2**64, size=4, dtype=np.uint64)))
            for _ in range(12)
        ]
        expected = {sym: store.chunk(sym).popcount() for sym in syms}
        for sym in syms:  # first sweep fills and overflows the memo
            store.popcount(sym)
            store.first_one(sym)
        assert len(store._popcount) <= 4
        assert len(store._first_one) <= 4
        assert store.memo_evicted_by["measure"] > 0
        assert store.stats()["memo_evicted_measure"] == \
            store.memo_evicted_by["measure"]
        # Evicted entries recompute correctly.
        assert all(store.popcount(sym) == expected[sym] for sym in syms)

    def test_measure_memo_lru_keeps_hot_entries(self):
        from repro.aob import AoB

        store = ChunkStore(8, memo_limit=2)
        syms = [
            store.intern(AoB(8, np.full(4, i + 1, dtype=np.uint64)))
            for i in range(3)
        ]
        store.popcount(syms[0])
        store.popcount(syms[1])
        store.popcount(syms[0])        # refresh: syms[1] is now LRU
        store.popcount(syms[2])        # evicts syms[1], not syms[0]
        assert syms[0] in store._popcount
        assert syms[1] not in store._popcount


class TestWarmVsColdCampaign:
    KW = dict(program="fig10", runs=6, seed=7, qat_backend="re")

    def test_byte_identical_serial_jobs_batch(self, tmp_path):
        cold = render_report(run_campaign(**self.KW))
        persist.configure(str(tmp_path / "cache.db"))
        warm_cold_pass = render_report(run_campaign(**self.KW))  # fills cache
        warm_serial = render_report(run_campaign(**self.KW))
        warm_jobs = render_report(run_campaign(jobs=2, **self.KW))
        warm_batch = render_report(run_campaign(batch=3, **self.KW))
        assert cold.encode() == warm_cold_pass.encode()
        assert cold.encode() == warm_serial.encode()
        assert cold.encode() == warm_jobs.encode()
        assert cold.encode() == warm_batch.encode()
        assert persist.attached_cache().stats()["memos"] > 0

    def test_warm_run_actually_hits(self, tmp_path):
        persist.configure(str(tmp_path / "cache.db"))
        run_campaign(**self.KW)
        persist.reset_counters()
        run_campaign(**self.KW)
        counters = persist.counter_snapshot()
        hits = counters.get("chunkstore.persist.hit", 0)
        misses = counters.get("chunkstore.persist.miss", 0)
        assert hits > 0 and hits / (hits + misses) >= 0.5


class TestCheckpointDedup:
    def _re_checkpoint(self):
        from repro.apps import fig10_program, run_factor_program

        sim, _ = run_factor_program(fig10_program(), ways=8,
                                    simulator="functional", qat_backend="re")
        return Checkpoint.take(sim.machine)

    def test_refs_roundtrip_and_shrink(self, tmp_path):
        persist.configure(str(tmp_path / "cache.db"))
        cp = self._re_checkpoint()
        first, second = str(tmp_path / "a.npz"), str(tmp_path / "b.npz")
        cp.save(first)
        cp.save(second)  # everything published by the first save: all refs
        header = json.loads(bytes(np.load(second)["header"]).decode())
        assert len(header["chunk_refs"]) == len(cp.store_chunks)
        assert os.path.getsize(second) < os.path.getsize(first)
        loaded = Checkpoint.load(second)
        assert loaded.verify()
        assert all(np.array_equal(a, b) for a, b in
                   zip(loaded.store_chunks, cp.store_chunks))
        # No duplicate payloads on disk: one row per distinct digest.
        digests = [chunk_digest(c) for c in cp.store_chunks]
        rows = sqlite3.connect(str(tmp_path / "cache.db")).execute(
            "SELECT COUNT(*) FROM chunks").fetchone()[0]
        assert rows == len(set(digests))

    def test_restore_into_live_store_after_dedup(self, tmp_path):
        persist.configure(str(tmp_path / "cache.db"))
        cp = self._re_checkpoint()
        path = str(tmp_path / "cp.npz")
        cp.save(path)
        cp.save(path)  # overwrite with the fully-ref'd form
        from repro.apps import fig10_program, run_factor_program

        sim, _ = run_factor_program(fig10_program(), ways=8,
                                    simulator="functional", qat_backend="re")
        loaded = Checkpoint.load(path)
        loaded.restore(sim.machine)
        assert sim.machine.instret == cp.instret
        assert Checkpoint.take(sim.machine).digest == cp.digest

    def test_missing_cache_refuses(self, tmp_path):
        persist.configure(str(tmp_path / "cache.db"))
        cp = self._re_checkpoint()
        path = str(tmp_path / "cp.npz")
        cp.save(path)
        cp.save(path)
        persist.reset()
        with pytest.raises(CheckpointError, match="no persistent chunk cache"):
            Checkpoint.load(path)

    def test_corrupted_cache_entry_refuses(self, tmp_path):
        persist.configure(str(tmp_path / "cache.db"))
        cp = self._re_checkpoint()
        path = str(tmp_path / "cp.npz")
        cp.save(path)
        cp.save(path)
        persist.flush()
        conn = sqlite3.connect(str(tmp_path / "cache.db"))
        conn.execute("UPDATE chunks SET payload = zeroblob(32)")
        conn.commit()
        conn.close()
        persist.reset()
        persist.configure(str(tmp_path / "cache.db"))
        with pytest.raises(CheckpointError, match="corrupt"):
            Checkpoint.load(path)


class TestCLI:
    def test_fig10_warm_cold_byte_identical(self, tmp_path, capsys):
        cache = str(tmp_path / "cache.db")
        argv = ["fig10", "--sim", "functional", "--qat-backend", "re",
                "--chunk-cache", cache]
        assert main(argv) == 0
        cold_out = capsys.readouterr().out
        assert main(argv) == 0
        warm_out = capsys.readouterr().out
        assert cold_out == warm_out
        assert main(argv[:-2]) == 0  # no cache: still identical
        assert capsys.readouterr().out == cold_out

    def test_ledger_carries_cache_provenance(self, tmp_path):
        cache = str(tmp_path / "cache.db")
        argv = ["fig10", "--sim", "functional", "--qat-backend", "re",
                "--chunk-cache", cache]
        assert main(argv) == 0 and main(argv) == 0
        rows = sqlite3.connect(os.environ["TANGLED_LEDGER"]).execute(
            "SELECT config, counters FROM runs ORDER BY rowid").fetchall()
        assert len(rows) == 2
        for config, _ in rows:
            assert json.loads(config)["chunk_cache"] == cache
        cold, warm = (json.loads(counters) for _, counters in rows)
        assert cold["chunkstore.persist.store"] > 0
        assert warm["chunkstore.persist.hit"] > 0
        assert warm.get("chunkstore.persist.miss", 0) == 0

    def test_env_var_activates(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv(persist.ENV_VAR, str(tmp_path / "cache.db"))
        argv = ["fig10", "--sim", "functional", "--qat-backend", "re"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        capsys.readouterr()
        assert ChunkCache(str(tmp_path / "cache.db")).stats()["memos"] > 0

    def test_stats_report_shows_persistent_line(self, tmp_path, capsys):
        cache = str(tmp_path / "cache.db")
        argv = ["fig10", "--sim", "functional", "--qat-backend", "re",
                "--chunk-cache", cache, "--stats"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "persistent cache hits   : 100.00%" in out

    def test_bench_list_includes_warm_specs(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig10.re_warm" in out
        assert "fig10.re_ways24_warm" in out
