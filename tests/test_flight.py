"""Flight recorder tests: ring semantics, spills, spools, forensics.

Covers the always-on architectural black box (:mod:`repro.obs.flight`)
end to end:

- ring buffer bounds (trim policy, totals, reset) and byte-stable
  snapshots;
- the randomized differential contract: the stripped fast loops and the
  span-instrumented slow path record *identical* event streams, on all
  three simulators and both Qat backends;
- worker spool protocol (first spill wins, ok shards discard, toxic
  shards collect) and the supervised campaign carrying collected
  blackboxes into its report;
- the ``tangled blackbox`` CLI (render + byte-stable ``--export json``)
  and the abnormal-end spills of ``tangled run``;
- the exit-status taxonomy living only in :mod:`repro.errors`.
"""

from __future__ import annotations

import json
import os
import random
import re

import pytest

from repro.obs import flight


@pytest.fixture(autouse=True)
def _fresh_recorder():
    """Each test starts (and leaves) an empty, enabled global ring."""
    flight.RECORDER.reset()
    flight.RECORDER.enabled = True
    yield
    flight.RECORDER.reset()


# ---------------------------------------------------------------------------
# Ring semantics
# ---------------------------------------------------------------------------

class TestRecorderRing:
    def test_trim_keeps_last_capacity_events(self):
        rec = flight.FlightRecorder(capacity=8)
        for pc in range(40):
            rec.note_retire(pc, (pc,))
        assert len(rec.events) <= rec.limit
        assert rec.total() == 40
        snap = rec.snapshot()
        pcs = [e["pc"] for e in snap["events"]]
        assert pcs == list(range(32, 40))  # the newest ``capacity``
        assert snap["events_dropped"] == 32

    def test_reset_clears_events_and_trim_count(self):
        rec = flight.FlightRecorder(capacity=4)
        for pc in range(20):
            rec.note_retire(pc, (pc,))
        rec.reset()
        assert rec.events == [] and rec.total() == 0

    def test_event_kinds_render_in_snapshot(self):
        rec = flight.FlightRecorder(capacity=64)
        rec.note_retire(0x10, (0x2C00,))
        rec.note_trap(0x11, "unknown_syscall", None, 1, "sys 9")
        rec.note_syscall(0x11, 9)
        rec.note_checkpoint("capture", "pc=0x0010")
        rec.note_fault("gpr", "bit=3")
        rec.mark("supervisor.retries", "shard 2")
        kinds = [e["kind"] for e in rec.snapshot()["events"]]
        assert kinds == ["retire", "trap", "syscall", "checkpoint",
                        "fault", "mark"]

    def test_snapshot_is_byte_stable(self):
        rec = flight.FlightRecorder(capacity=16)
        for pc in range(10):
            rec.note_retire(pc, (0x2C00 + pc,))
        a = flight.export_json(rec.snapshot(reason="x", run_id="r"))
        b = flight.export_json(rec.snapshot(reason="x", run_id="r"))
        assert a == b
        json.loads(a)  # and it is valid JSON

    def test_qat_annotation_needs_ways_context(self):
        rec = flight.FlightRecorder(capacity=16)
        # ``8002 0001`` is the two-word Qat ``qand @2, @0, @1``.
        rec.note_retire(0, (0x8002, 0x0001))
        plain = rec.snapshot()
        assert "qat" in plain["events"][0]
        assert plain["events"][0]["qat"]["op"] == "qand"
        sized = rec.snapshot(context={"ways": 8})
        assert sized["events"][0]["qat"]["bits"] == 256
        assert sized["qat_summary"] == {"ops": 1, "bits": 256}

    def test_non_qat_retire_is_unannotated(self):
        rec = flight.FlightRecorder(capacity=16)
        rec.note_retire(0, (0x2C00,))  # lex $rv, 0
        assert "qat" not in rec.snapshot()["events"][0]

    def test_env_var_disables_and_resizes(self, monkeypatch):
        monkeypatch.setenv(flight.ENV_VAR, "off")
        assert flight._from_env().enabled is False
        monkeypatch.setenv(flight.ENV_VAR, "128")
        rec = flight._from_env()
        assert rec.enabled and rec.capacity == 128

    def test_spill_and_load_roundtrip(self, tmp_path):
        rec = flight.FlightRecorder(capacity=16)
        rec.note_retire(0, (0x2C00,))
        path = str(tmp_path / "box" / "blackbox-abc.json")
        flight.spill(path, "test", run_id="abc", recorder=rec)
        doc = flight.load_blackbox(path)
        assert doc["run_id"] == "abc" and doc["reason"] == "test"
        assert doc["events"][0]["kind"] == "retire"

    def test_load_rejects_non_blackbox_files(self, tmp_path):
        from repro.errors import ReproError

        path = tmp_path / "not-a-box.json"
        path.write_text("{}")
        with pytest.raises(ReproError):
            flight.load_blackbox(str(path))


# ---------------------------------------------------------------------------
# Differential: fast loops vs instrumented slow path, all sims/backends
# ---------------------------------------------------------------------------

def _random_program(rng: random.Random) -> str:
    """A seeded straight-line program mixing scalar and Qat work."""
    lines = []
    for reg in range(4):
        lines.append(f"lex ${reg}, {rng.randrange(16)}")
    for _ in range(rng.randrange(6, 14)):
        op = rng.choice(("add", "and", "or", "xor", "copy", "slt"))
        lines.append(f"{op} ${rng.randrange(4)}, ${rng.randrange(4)}")
    for qreg in range(3):
        lines.append(f"had @{qreg}, {rng.randrange(4)}")
    for _ in range(rng.randrange(2, 6)):
        op = rng.choice(("and", "or", "xor"))
        a, b = rng.randrange(3), rng.randrange(3)
        lines.append(f"{op} @{3 + rng.randrange(4)}, @{a}, @{b}")
    lines += ["lex $rv, 0", "sys"]
    return "\n".join(lines) + "\n"


def _record_events(program, sim_kind: str, backend: str, fast: bool):
    from repro.cpu import (
        FunctionalSimulator,
        MultiCycleSimulator,
        PipelinedSimulator,
    )

    cls = {"functional": FunctionalSimulator,
           "multicycle": MultiCycleSimulator,
           "pipelined": PipelinedSimulator}[sim_kind]
    sim = cls(ways=8, qat_backend=backend)  # "re" needs ways >= 6
    if sim_kind != "pipelined":  # the pipelined model has no fast loop
        sim.use_fastpath = fast
    sim.load(program)
    flight.RECORDER.reset()
    sim.run()
    return list(flight.RECORDER.events)


class TestDifferentialParity:
    @pytest.mark.parametrize("backend", ["dense", "re"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fast_and_slow_streams_identical_everywhere(self, seed, backend):
        from repro.asm import assemble

        program = assemble(_random_program(random.Random(seed)))
        streams = {}
        for sim_kind in ("functional", "multicycle", "pipelined"):
            fast = _record_events(program, sim_kind, backend, fast=True)
            slow = _record_events(program, sim_kind, backend, fast=False)
            assert fast == slow, (
                f"{sim_kind}/{backend}: fast path recorded a different "
                f"event stream than the instrumented path"
            )
            streams[sim_kind] = fast
        # The stream is architectural, so every simulator agrees too.
        assert streams["functional"] == streams["multicycle"]
        assert streams["functional"] == streams["pipelined"]

    def test_fig10_parity_with_syscall_ordering(self):
        from repro.apps.fig10 import fig10_program

        program = fig10_program()
        fast = _record_events(program, "functional", "dense", fast=True)
        slow = _record_events(program, "functional", "dense", fast=False)
        assert fast == slow
        kinds = [event[0] for event in fast]
        assert flight.SYSCALL in kinds
        # The halting syscall is noted before its ``sys`` retires, so
        # it sits just ahead of the final retire event.
        assert kinds.index(flight.SYSCALL) == len(kinds) - 2
        assert kinds[-1] == flight.RETIRE


# ---------------------------------------------------------------------------
# Worker spool protocol
# ---------------------------------------------------------------------------

class TestSpool:
    @pytest.fixture
    def spool(self, tmp_path, monkeypatch):
        directory = str(tmp_path / "spool")
        os.makedirs(directory)
        monkeypatch.setenv(flight.SPOOL_ENV, directory)
        monkeypatch.setenv(flight.SPOOL_RUN_ENV, "feedc0ffee12")
        return directory

    def test_unconfigured_spool_is_inert(self, monkeypatch):
        monkeypatch.delenv(flight.SPOOL_ENV, raising=False)
        monkeypatch.delenv(flight.SPOOL_RUN_ENV, raising=False)
        assert flight.spool_file(3) is None
        assert flight.spool_spill(3, "crash") is None
        assert flight.spool_collect(3) is None
        flight.spool_discard(3)  # no-op, no raise

    def test_first_spill_wins(self, spool):
        flight.RECORDER.note_retire(0, (0x2C00,))
        first = flight.spool_spill(4, "chaos-crash")
        assert first is not None and os.path.exists(first)
        before = open(first).read()
        flight.RECORDER.note_retire(1, (0x2C01,))
        assert flight.spool_spill(4, "deadline") == first
        assert open(first).read() == before  # retry did not overwrite

    def test_collect_and_discard(self, spool):
        flight.RECORDER.note_retire(0, (0x2C00,))
        path = flight.spool_spill(7, "worker-error")
        assert flight.spool_collect(7) == path
        flight.spool_discard(7)
        assert flight.spool_collect(7) is None

    def test_spill_carries_worker_context(self, spool):
        flight.WORKER_CONTEXT.clear()
        flight.WORKER_CONTEXT.update(program="fig10", ways=4)
        try:
            flight.RECORDER.note_retire(0, (0x9000, 0x0000))
            doc = flight.load_blackbox(flight.spool_spill(1, "crash"))
        finally:
            flight.WORKER_CONTEXT.clear()
        assert doc["context"]["program"] == "fig10"
        assert doc["shard"] == 1 and doc["run_id"] == "feedc0ffee12"

    def test_configure_spool_sets_and_clear_unsets(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("TANGLED_BLACKBOX_DIR", str(tmp_path / "bb"))
        directory = flight.configure_spool("aaaabbbbcccc")
        try:
            assert os.environ[flight.SPOOL_ENV] == directory
            assert os.environ[flight.SPOOL_RUN_ENV] == "aaaabbbbcccc"
            assert os.path.isdir(directory)
        finally:
            flight.clear_spool()
        assert flight.SPOOL_ENV not in os.environ

    def test_arm_deadline_dump_fires_before_deadline(self, spool):
        import time

        flight.RECORDER.note_retire(0, (0x2C00,))
        disarm = flight.arm_deadline_dump(9, timeout=0.15)
        try:
            deadline = time.monotonic() + 2.0
            while (flight.spool_collect(9) is None
                   and time.monotonic() < deadline):
                time.sleep(0.01)
        finally:
            disarm()
        path = flight.spool_collect(9)
        assert path is not None
        assert flight.load_blackbox(path)["reason"] == "deadline"

    def test_disarm_cancels_the_dump(self, spool):
        import time

        disarm = flight.arm_deadline_dump(9, timeout=0.2)
        disarm()
        time.sleep(0.25)
        assert flight.spool_collect(9) is None


# ---------------------------------------------------------------------------
# Supervised campaign integration
# ---------------------------------------------------------------------------

class TestCampaignBlackbox:
    def test_toxic_shard_blackbox_collected_into_report(self, tmp_path,
                                                        monkeypatch):
        from repro.faults.campaign import run_campaign
        from repro.runtime.supervisor import CHAOS_ENV, SupervisorConfig

        monkeypatch.setenv("TANGLED_BLACKBOX_DIR", str(tmp_path / "bb"))
        monkeypatch.setenv(CHAOS_ENV, "crash:2:99")
        flight.configure_spool("cafecafecafe")
        try:
            report = run_campaign(
                program="fig10", runs=6, seed=7, jobs=3,
                supervise=SupervisorConfig(jobs=3, max_attempts=2,
                                           backoff_base=0.01),
            )
        finally:
            flight.clear_spool()
        assert report["summary"]["toxic"] == 1
        boxes = report.get("blackbox")
        assert boxes and len(boxes) == 1
        doc = flight.load_blackbox(boxes[0])
        assert doc["shard"] == 2 and doc["reason"] == "chaos-crash"
        assert doc["context"]["program"] == "fig10"
        assert any(e["kind"] == "mark" and e["label"] == "campaign.run"
                   for e in doc["events"])
        toxic = [d for d in report["runs_detail"]
                 if d["outcome"] == "toxic"]
        assert toxic[0]["blackbox"] == boxes[0]

    def test_healthy_campaign_report_has_no_blackbox_key(self, tmp_path,
                                                         monkeypatch):
        from repro.faults.campaign import run_campaign

        monkeypatch.setenv("TANGLED_BLACKBOX_DIR", str(tmp_path / "bb"))
        flight.configure_spool("beefbeefbeef")
        try:
            report = run_campaign(program="fig10", runs=4, seed=7, jobs=2)
        finally:
            flight.clear_spool()
        assert "blackbox" not in report
        for detail in report["runs_detail"]:
            assert detail.get("blackbox") is None

    def test_healed_chaos_report_byte_identical_to_serial(self, tmp_path,
                                                          monkeypatch):
        """A shard that crashes once then heals discards its spool: the
        report (and its bytes) stay identical to the serial run."""
        from repro.faults.campaign import render_report, run_campaign
        from repro.runtime.supervisor import CHAOS_ENV

        serial = run_campaign(program="fig10", runs=6, seed=7, jobs=1)
        monkeypatch.setenv("TANGLED_BLACKBOX_DIR", str(tmp_path / "bb"))
        monkeypatch.setenv(CHAOS_ENV, "crash:3:0")
        flight.configure_spool("0123456789ab")
        try:
            chaotic = run_campaign(program="fig10", runs=6, seed=7, jobs=3)
        finally:
            flight.clear_spool()
        assert render_report(chaotic) == render_report(serial)
        assert "blackbox" not in chaotic


# ---------------------------------------------------------------------------
# CLI: abnormal-end spills and the ``tangled blackbox`` subcommand
# ---------------------------------------------------------------------------

class TestCliBlackbox:
    @pytest.fixture
    def trap_source(self, tmp_path):
        path = tmp_path / "trap.s"
        path.write_text("lex $12, 9\nsys\n")
        return str(path)

    def _latest_run(self):
        from repro.obs import ledger as ledger_mod

        with ledger_mod.open_ledger() as ledger:
            runs = ledger.runs(last=1)
        assert runs, "the run should have been recorded"
        return runs[-1]

    def test_trapping_run_spills_linked_blackbox(self, trap_source, capsys):
        from repro.cli import main

        assert main(["run", trap_source, "--sim", "functional"]) == 1
        err = capsys.readouterr().err
        assert "blackbox ->" in err
        run = self._latest_run()
        boxes = [p for p in run.artifacts
                 if os.path.basename(p).startswith("blackbox-")]
        assert len(boxes) == 1 and os.path.exists(boxes[0])
        doc = flight.load_blackbox(boxes[0])
        assert doc["reason"] == "error"
        assert any(e["kind"] == "trap"
                   and e["cause"] == "unknown_syscall"
                   for e in doc["events"])

    def test_blackbox_subcommand_renders_disassembly(self, trap_source,
                                                     capsys):
        from repro.cli import main

        main(["run", trap_source, "--sim", "functional"])
        run = self._latest_run()
        capsys.readouterr()
        assert main(["blackbox", run.id]) == 0
        out = capsys.readouterr().out
        assert f"== blackbox {run.id}" in out
        assert "lex" in out  # disassembled retire
        assert "** trap unknown_syscall" in out
        assert "-- syscall service=9" in out

    def test_blackbox_export_json_is_byte_stable(self, trap_source, capsys):
        from repro.cli import main

        main(["run", trap_source, "--sim", "functional"])
        run = self._latest_run()
        capsys.readouterr()
        assert main(["blackbox", run.id, "--export", "json"]) == 0
        first = capsys.readouterr().out
        assert main(["blackbox", run.id, "--export", "json"]) == 0
        assert capsys.readouterr().out == first
        json.loads(first)

    def test_blackbox_accepts_a_path(self, trap_source, capsys):
        from repro.cli import main

        main(["run", trap_source, "--sim", "functional"])
        run = self._latest_run()
        box = next(p for p in run.artifacts
                   if os.path.basename(p).startswith("blackbox-"))
        capsys.readouterr()
        assert main(["blackbox", box, "--last", "2"]) == 0
        assert "** trap unknown_syscall" in capsys.readouterr().out

    def test_blackbox_errors_on_clean_run(self, tmp_path, capsys):
        from repro.cli import main

        ok = tmp_path / "ok.s"
        ok.write_text("lex $0, 1\nlex $rv, 0\nsys\n")
        assert main(["run", str(ok), "--sim", "functional"]) == 0
        run = self._latest_run()
        assert main(["blackbox", run.id]) == 1
        assert "no blackbox artifacts" in capsys.readouterr().err

    def test_clean_run_spills_nothing(self, tmp_path, capsys):
        from repro.cli import main

        ok = tmp_path / "ok.s"
        ok.write_text("lex $0, 1\nlex $rv, 0\nsys\n")
        assert main(["run", str(ok), "--sim", "functional"]) == 0
        run = self._latest_run()
        assert not any(os.path.basename(p).startswith("blackbox-")
                       for p in run.artifacts)


# ---------------------------------------------------------------------------
# Exit-status taxonomy (satellite: one documented home in repro.errors)
# ---------------------------------------------------------------------------

class TestExitTaxonomy:
    def test_values(self):
        from repro import errors

        assert errors.EXIT_OK == 0
        assert errors.EXIT_FAILURE == 1
        assert errors.EXIT_REGRESSION == 2
        assert errors.EXIT_TIMEOUT == 3
        assert errors.EXIT_TOXIC_SHARDS == 4
        assert errors.EXIT_INTERRUPTED == 130

    def test_cli_has_no_literal_exit_codes(self):
        """``cli.py`` must route every exit status through the named
        constants: no ``return <int>``, ``finish(<int>)``, or
        ``exit(<int>)`` literals survive."""
        import inspect

        from repro import cli

        source = inspect.getsource(cli)
        offenders = []
        for lineno, line in enumerate(source.splitlines(), start=1):
            code = line.split("#", 1)[0]
            if re.search(r"\breturn\s+\d+\b", code) \
                    or re.search(r"\bfinish\(\s*\d", code) \
                    or re.search(r"\bexit\(\s*\d", code):
                offenders.append(f"{lineno}: {line.strip()}")
        assert not offenders, (
            "literal exit codes in cli.py (use repro.errors.EXIT_*):\n"
            + "\n".join(offenders)
        )

    def test_cli_imports_the_taxonomy(self):
        from repro import cli, errors

        assert cli.EXIT_REGRESSION is errors.EXIT_REGRESSION
        assert cli.EXIT_TOXIC_SHARDS is errors.EXIT_TOXIC_SHARDS


# ---------------------------------------------------------------------------
# Status line (satellite: finish() clears the throttled stderr line)
# ---------------------------------------------------------------------------

class _FakeTty:
    def __init__(self, tty=True):
        self.tty = tty
        self.writes = []

    def write(self, text):
        self.writes.append(text)

    def flush(self):
        pass

    def isatty(self):
        return self.tty


class TestStatusLine:
    def test_tty_rewrites_in_place_and_clears(self):
        from repro.cli import _StatusLine

        stream = _FakeTty()
        line = _StatusLine(stream)
        line("progress: 1/4")
        line("progress: 2/4")
        assert all(w.startswith("\r") for w in stream.writes)
        line.clear()
        assert stream.writes[-1].endswith("\r")
        assert set(stream.writes[-1].strip("\r")) <= {" "}

    def test_non_tty_suppresses_throttled_rewrites(self):
        # Regression: the gauge used to repeat-print on pipes/CI logs,
        # accumulating hundreds of near-identical lines.  Only println
        # (the durable final summary) may reach a non-TTY stream.
        from repro.cli import _StatusLine

        stream = _FakeTty(tty=False)
        line = _StatusLine(stream)
        line("progress: 1/4")
        line("progress: 2/4")
        line.clear()  # no-op
        assert stream.writes == []
        line.println("final: 4/4")
        assert "".join(stream.writes) == "final: 4/4\n"

    def test_tty_rewrite_clamped_to_terminal_width(self):
        # Regression: a status line wider than the terminal wrapped,
        # breaking the \r-rewrite into a torn stack of lines.
        from repro.cli import _StatusLine

        stream = _FakeTty()
        line = _StatusLine(stream, width=20)
        line("x" * 50)
        # Clamped to width-1: the last column must stay free or most
        # terminals wrap on the final cell.
        assert stream.writes[0] == "\r" + "x" * 19
        line("y" * 5)
        # The shorter rewrite pads over the clamped width, not the
        # original 50 columns.
        assert stream.writes[1] == "\r" + "y" * 5 + " " * 14

    def test_tracker_finish_clears_before_final_summary(self):
        from repro.obs.progress import ProgressTracker

        calls = []

        class Sink:
            def __call__(self, line):
                calls.append(("line", line))

            def clear(self):
                calls.append(("clear", None))

            def println(self, line):
                calls.append(("println", line))

        tracker = ProgressTracker(total=2, what="runs", emit=Sink(),
                                  interval=0.0)
        tracker.note(1, 0.01)
        tracker.note(1, 0.01)
        tracker.finish()
        ops = [kind for kind, _ in calls]
        assert "clear" in ops and "println" in ops
        assert ops.index("clear") < ops.index("println")

    def test_tracker_finish_with_plain_callable_still_emits(self):
        from repro.obs.progress import ProgressTracker

        lines = []
        tracker = ProgressTracker(total=1, what="runs", emit=lines.append,
                                  interval=0.0)
        tracker.note(1, 0.01)
        tracker.finish()
        assert lines and lines[-1].startswith("progress: 1/1")
