"""Unit tests for the observability subsystem (``repro.obs``).

Covers the instrument math (counters, gauges, histogram percentiles and
merging), span nesting and timing monotonicity, the disabled-mode no-op
path, and the Chrome ``trace_event`` / JSON-lines sink formats.
"""

import json

import pytest

from repro import obs
from repro.obs import (
    NULL_SPAN,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    Telemetry,
    Tracer,
)
from repro.obs import runtime
from repro.obs.spans import PID_PIPELINE, PID_WALL


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_add_is_an_alias_for_inc(self):
        c = Counter("x")
        c.add(10)
        assert c.value == 10
        assert Counter.add is Counter.inc


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("cpi")
        g.set(1.5)
        g.inc(0.5)
        g.dec(1.0)
        assert g.value == pytest.approx(1.0)


class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram("t")
        for v in (3.0, 1.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == pytest.approx(6.0)
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == pytest.approx(2.0)

    def test_percentiles_linear_interpolation(self):
        h = Histogram("t")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        # rank = 0.5 * 99 = 49.5 -> midway between 50 and 51
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(90) == pytest.approx(90.1)

    def test_percentile_bounds_checked(self):
        h = Histogram("t")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-1)

    def test_empty_summary_is_all_zero(self):
        s = Histogram("t").summary()
        assert s["count"] == 0
        assert all(s[k] == 0.0 for k in ("mean", "min", "p50", "p90", "p99", "max"))

    def test_sampling_keeps_exact_aggregates_bounded_memory(self):
        h = Histogram("t", max_samples=8)
        for v in range(1, 1001):
            h.observe(float(v))
        # count/total/min/max never degrade ...
        assert h.count == 1000
        assert h.total == pytest.approx(sum(range(1, 1001)))
        assert h.min == 1.0 and h.max == 1000.0
        # ... while the retained sample set stays bounded.
        assert len(h._samples) <= 8
        assert h._stride > 1
        # percentiles remain sane estimates over the retained samples
        assert 1.0 <= h.percentile(50) <= 1000.0

    def test_merge_folds_counts_and_extremes(self):
        a = Histogram("t")
        b = Histogram("t")
        for v in (1.0, 2.0):
            a.observe(v)
        for v in (10.0, 20.0):
            b.observe(v)
        a.merge(b)
        assert a.count == 4
        assert a.total == pytest.approx(33.0)
        assert a.min == 1.0 and a.max == 20.0
        assert a.percentile(100) == 20.0


class TestMetricRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert len(reg) == 2
        assert "a" in reg and "missing" not in reg

    def test_type_collision_raises(self):
        reg = MetricRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")
        with pytest.raises(TypeError):
            reg.histogram("a")

    def test_value_and_snapshot(self):
        reg = MetricRegistry()
        reg.counter("c").add(3)
        reg.gauge("g").set(1.25)
        reg.histogram("h").observe(2.0)
        assert reg.value("c") == 3
        assert reg.value("absent", default=-1) == -1
        assert reg.value("h", default=-1) == -1  # histograms are not scalar
        snap = reg.snapshot()
        assert snap["c"] == 3
        assert snap["g"] == 1.25
        assert snap["h"]["count"] == 1
        json.dumps(snap)  # must be plain data


class TestTracer:
    def test_span_nesting_records_depth(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        # inner closes first
        inner, outer = t.spans
        assert inner.name == "inner" and inner.depth == 1
        assert outer.name == "outer" and outer.depth == 0

    def test_span_timing_is_monotone(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        inner, outer = t.spans
        assert inner.dur_ns >= 0 and outer.dur_ns >= 0
        # the inner span starts after and ends before the outer one
        assert inner.ts_ns >= outer.ts_ns
        assert inner.ts_ns + inner.dur_ns <= outer.ts_ns + outer.dur_ns

    def test_end_without_begin_raises(self):
        with pytest.raises(RuntimeError):
            Tracer().end()

    def test_max_events_counts_drops(self):
        t = Tracer(max_events=2)
        t.complete("a", ts_ns=0, dur_ns=1)
        t.instant("b", ts_ns=1)
        t.sample("c", 1.0, ts_ns=2)  # over the cap
        assert len(t) == 2
        assert t.dropped == 1
        assert t.truncated


class TestDisabledMode:
    def test_disabled_span_is_the_shared_null_singleton(self):
        tel = Telemetry(enabled=False)
        assert tel.span("x") is NULL_SPAN
        assert tel.span("y", cat="c", k=1) is NULL_SPAN
        with tel.span("x"):
            pass
        assert len(tel.tracer) == 0
        assert len(tel.metrics) == 0

    def test_disabled_timer_records_nothing(self):
        tel = Telemetry(enabled=False)
        with tel.timer("t") as handle:
            pass
        assert handle.elapsed >= 0.0  # elapsed still measured for the caller
        assert len(tel.metrics) == 0
        assert len(tel.tracer) == 0

    def test_metrics_only_mode_skips_events(self):
        tel = Telemetry(enabled=True, tracing=False)
        assert tel.span("x") is NULL_SPAN
        with tel.timer("t"):
            pass
        assert tel.metrics.histogram("t").count == 1
        assert len(tel.tracer) == 0

    def test_runtime_guard_follows_install(self):
        assert not runtime.active
        assert obs.current() is None
        with obs.capture(tracing=False) as tel:
            assert runtime.active
            assert obs.current() is tel
        assert not runtime.active
        assert obs.current() is None

    def test_installing_disabled_telemetry_keeps_guard_off(self):
        obs.install(Telemetry(enabled=False))
        try:
            assert not runtime.active
        finally:
            obs.disable()


def _populated_telemetry() -> Telemetry:
    tel = Telemetry()
    with tel.span("run", cat="cpu", sim="pipelined"):
        with tel.timer("bench.step"):
            pass
    tel.tracer.complete("IF", ts_ns=1000, dur_ns=2000,
                        cat="stage", pid=PID_PIPELINE, tid="IF")
    tel.tracer.instant("halt", ts_ns=5000)
    tel.tracer.sample("pipeline.cpi", 1.25, ts_ns=4000, pid=PID_PIPELINE)
    tel.metrics.counter("pipeline.cycles").add(167)
    tel.metrics.gauge("pipeline.cpi").set(1.8152)
    return tel


class TestChromeTraceSink:
    def test_schema_and_round_trip(self):
        trace = _populated_telemetry().chrome_trace()
        # top-level object format
        assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
        events = trace["traceEvents"]
        assert events
        for event in events:
            assert set(event) >= {"name", "ph", "pid", "tid"}
            assert event["ph"] in {"X", "i", "C", "M"}
            if event["ph"] != "M":
                assert isinstance(event["ts"], (int, float))
            if event["ph"] == "X":
                assert event["dur"] >= 0.001  # Perfetto hides 0-width slices
            if event["ph"] == "i":
                assert event["s"] == "t"
        # the whole object must survive a JSON round trip
        assert json.loads(json.dumps(trace)) == trace

    def test_processes_and_threads_are_named(self):
        events = _populated_telemetry().chrome_trace()["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        process_names = {e["args"]["name"] for e in meta
                         if e["name"] == "process_name"}
        thread_names = {e["args"]["name"] for e in meta
                        if e["name"] == "thread_name"}
        assert "tangled (wall clock)" in process_names
        assert "pipeline (1 cycle = 1 us)" in process_names
        assert {"IF", "main", "bench"} <= thread_names

    def test_time_domains_separated_by_pid(self):
        events = _populated_telemetry().chrome_trace()["traceEvents"]
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert pids == {PID_WALL, PID_PIPELINE}

    def test_metric_snapshot_rides_along(self):
        trace = _populated_telemetry().chrome_trace()
        metrics = trace["otherData"]["metrics"]
        assert metrics["pipeline.cycles"] == 167
        assert metrics["pipeline.cpi"] == pytest.approx(1.8152)

    def test_write_chrome_trace_is_loadable(self, tmp_path):
        path = tmp_path / "trace.json"
        _populated_telemetry().write_chrome_trace(str(path))
        with open(path, encoding="utf-8") as handle:
            loaded = json.load(handle)
        assert loaded["traceEvents"]


class TestJsonlSink:
    def test_every_line_is_valid_json(self):
        text = _populated_telemetry().events_jsonl()
        lines = text.strip().splitlines()
        assert lines
        kinds = set()
        for line in lines:
            record = json.loads(line)
            kinds.add(record["kind"])
        assert kinds == {"metric", "span", "instant", "counter"}


class TestReportSink:
    def test_headline_always_present(self):
        report = Telemetry(enabled=True, tracing=False).report()
        assert "pipeline CPI" in report
        assert "n/a (no RE activity)" in report

    def test_hit_rate_rendered_as_percentage(self):
        tel = Telemetry(enabled=True, tracing=False)
        tel.metrics.counter("chunkstore.binop.hit").add(3)
        tel.metrics.counter("chunkstore.binop.miss").add(1)
        assert "75.00%" in tel.report()

    def test_sections_appear_when_populated(self):
        report = _populated_telemetry().report()
        assert "counters:" in report
        assert "gauges:" in report
        assert "histograms:" in report
        assert "trace:" in report


class TestPercentilesHelper:
    """Histogram.percentiles(): the one-call p50/p95/p99 summary."""

    def test_named_keys_and_values(self):
        h = Histogram("t")
        for v in range(1, 101):
            h.observe(float(v))
        pct = h.percentiles((50, 95, 99))
        assert set(pct) == {"p50", "p95", "p99"}
        assert pct["p50"] == pytest.approx(50.5)
        assert pct["p95"] == pytest.approx(95.05)
        assert pct["p99"] == pytest.approx(99.01)

    def test_empty_histogram_is_all_zero(self):
        assert Histogram("t").percentiles() == {
            "p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_single_sample_is_every_percentile(self):
        h = Histogram("t")
        h.observe(42.0)
        assert h.percentiles((50, 95, 99)) == {
            "p50": 42.0, "p95": 42.0, "p99": 42.0}

    def test_reservoir_truncated_estimates_stay_in_range(self):
        h = Histogram("t", max_samples=8)
        for v in range(1, 10_001):
            h.observe(float(v))
        assert h._stride > 1  # the reservoir actually truncated
        pct = h.percentiles((50, 95, 99))
        assert 1.0 <= pct["p50"] <= pct["p95"] <= pct["p99"] <= 10_000.0

    def test_fractional_percentile_key(self):
        h = Histogram("t")
        h.observe(1.0)
        assert set(h.percentiles((99.9,))) == {"p99.9"}

    def test_report_sink_shows_p50_p95_p99(self):
        tel = Telemetry(enabled=True, tracing=False)
        for v in range(1, 101):
            tel.histogram("fault.run_seconds").observe(float(v))
        report = tel.report()
        assert "p50=50.5" in report
        assert "p95=95.05" in report
        assert "p99=99.01" in report


class TestTraceMetadataInjection:
    """write_trace() fills in process_name/thread_name metadata."""

    def test_unnamed_pids_and_tids_get_labeled(self, tmp_path):
        from repro.obs.sinks import write_trace
        from repro.obs.spans import PID_PROFILE, PID_WORKERS

        trace = {"traceEvents": [
            {"name": "pc", "ph": "X", "ts": 0, "dur": 1,
             "pid": PID_PROFILE, "tid": 1},
            {"name": "hb", "ph": "i", "s": "t", "ts": 0,
             "pid": PID_WORKERS, "tid": 2},
        ]}
        path = tmp_path / "t.json"
        write_trace(str(path), trace)
        loaded = json.loads(path.read_text())
        meta = {(e["name"], e["pid"], e.get("tid")): e["args"]["name"]
                for e in loaded["traceEvents"] if e["ph"] == "M"}
        assert meta[("process_name", PID_PROFILE, 0)] == \
            "profile flamegraph (1 cycle = 1 us)"
        assert meta[("process_name", PID_WORKERS, 0)] == \
            "--jobs workers (wall clock)"
        assert meta[("thread_name", PID_PROFILE, 1)] == "attributed cycles"
        assert meta[("thread_name", PID_WORKERS, 2)] == "worker 2"

    def test_existing_metadata_not_duplicated(self, tmp_path):
        from repro.obs.sinks import write_trace

        trace = {"traceEvents": [
            {"name": "x", "ph": "X", "ts": 0, "dur": 1, "pid": 9, "tid": 1},
            {"name": "process_name", "ph": "M", "pid": 9, "tid": 0,
             "args": {"name": "mine"}},
            {"name": "thread_name", "ph": "M", "pid": 9, "tid": 1,
             "args": {"name": "mine too"}},
        ]}
        path = tmp_path / "t.json"
        write_trace(str(path), trace)
        loaded = json.loads(path.read_text())
        meta = [e for e in loaded["traceEvents"] if e["ph"] == "M"]
        assert len(meta) == 2  # nothing added
        assert {e["args"]["name"] for e in meta} == {"mine", "mine too"}

    def test_caller_trace_dict_not_mutated(self, tmp_path):
        from repro.obs.sinks import write_trace

        events = [{"name": "x", "ph": "X", "ts": 0, "dur": 1,
                   "pid": 7, "tid": 1}]
        trace = {"traceEvents": events}
        write_trace(str(tmp_path / "t.json"), trace)
        assert trace["traceEvents"] is events
        assert len(events) == 1

    def test_jobs_campaign_trace_has_worker_tracks(self, tmp_path):
        from repro.cli import main
        from repro.obs.spans import PID_WORKERS

        trace = tmp_path / "campaign.json"
        assert main(["faults", "--runs", "4", "--jobs", "2",
                     "--summary-only", "--trace-out", str(trace)]) == 0
        loaded = json.loads(trace.read_text())
        names = [e["args"]["name"] for e in loaded["traceEvents"]
                 if e["ph"] == "M" and e["pid"] == PID_WORKERS]
        assert "--jobs workers (wall clock)" in names
        assert any(n.startswith("worker ") for n in names)
