"""Graph-coloring application tests (cross-checked with networkx)."""

import itertools

import networkx as nx
import pytest

from repro.apps.coloring import chromatic_number, color_graph
from repro.errors import ReproError


def brute_force_colorings(edges, vertices, k):
    out = []
    for assignment in itertools.product(range(k), repeat=len(vertices)):
        coloring = dict(zip(vertices, assignment))
        if all(coloring[u] != coloring[v] for u, v in edges):
            out.append(coloring)
    return out


class TestColorGraph:
    def test_triangle_3_colors(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        solutions = color_graph(edges, 3)
        assert len(solutions) == 6  # 3! proper colorings of K3
        for coloring in solutions:
            for u, v in edges:
                assert coloring[u] != coloring[v]

    def test_triangle_2_colors_impossible(self):
        assert color_graph([(0, 1), (1, 2), (0, 2)], 2) == []

    def test_path_2_colors(self):
        solutions = color_graph([(0, 1), (1, 2)], 2)
        assert len(solutions) == 2  # alternating colorings

    def test_matches_brute_force(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
        vertices = [0, 1, 2, 3]
        got = color_graph(edges, 3)
        expected = brute_force_colorings(edges, vertices, 3)
        assert sorted(got, key=lambda c: tuple(c[v] for v in vertices)) == sorted(
            expected, key=lambda c: tuple(c[v] for v in vertices)
        )

    def test_non_power_of_two_palette(self):
        """3 colors need range constraints (2 bits encode 4 codes)."""
        solutions = color_graph([(0, 1)], 3)
        assert len(solutions) == 6  # 3*3 - 3 equal
        assert all(c[0] < 3 and c[1] < 3 for c in solutions)

    def test_isolated_nodes_via_nodes_param(self):
        solutions = color_graph([(0, 1)], 2, nodes=[0, 1, 2])
        assert len(solutions) == 4  # 2 edge colorings x 2 free choices

    def test_networkx_graph_input(self):
        g = nx.petersen_graph()
        solutions = color_graph(g.edges(), 3, max_solutions=5)
        assert solutions  # Petersen graph is 3-chromatic
        for coloring in solutions:
            for u, v in g.edges():
                assert coloring[u] != coloring[v]

    def test_max_solutions_caps_readout(self):
        solutions = color_graph([(0, 1)], 4, max_solutions=3)
        assert len(solutions) == 3

    def test_self_loop_rejected(self):
        with pytest.raises(ReproError):
            color_graph([(0, 0)], 3)

    def test_zero_colors_rejected(self):
        with pytest.raises(ReproError):
            color_graph([(0, 1)], 0)

    def test_empty_graph(self):
        assert color_graph([], 3) == []


class TestChromaticNumber:
    @pytest.mark.parametrize("graph,expected", [
        (nx.complete_graph(3), 3),
        (nx.complete_graph(4), 4),
        (nx.cycle_graph(4), 2),
        (nx.cycle_graph(5), 3),
        (nx.petersen_graph(), 3),
    ])
    def test_known_graphs(self, graph, expected):
        assert chromatic_number(graph.edges(), nodes=graph.nodes()) == expected

    def test_budget_exhausted(self):
        with pytest.raises(ReproError):
            chromatic_number(nx.complete_graph(5).edges(), max_colors=3)
