"""SAT / function-inversion search applications."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import invert_function, solve_sat
from repro.errors import ReproError


def brute_force_sat(clauses, num_vars):
    out = []
    for assignment in range(1 << num_vars):
        ok = True
        for clause in clauses:
            if not any(
                ((assignment >> (abs(l) - 1)) & 1) == (1 if l > 0 else 0)
                for l in clause
            ):
                ok = False
                break
        if ok:
            out.append(assignment)
    return out


class TestSolveSat:
    def test_simple_formula(self):
        clauses = [[1, 2], [-1, 3], [-2, -3]]
        assert solve_sat(clauses, 3) == brute_force_sat(clauses, 3)

    def test_unsatisfiable(self):
        clauses = [[1], [-1]]
        assert solve_sat(clauses, 1) == []

    def test_tautology(self):
        assert solve_sat([], 2) == [0, 1, 2, 3]

    def test_unit_clauses_force_assignment(self):
        assert solve_sat([[1], [-2], [3]], 3) == [0b101]

    @settings(max_examples=25)
    @given(st.data())
    def test_matches_brute_force(self, data):
        num_vars = data.draw(st.integers(min_value=1, max_value=6))
        literals = st.integers(min_value=1, max_value=num_vars).flatmap(
            lambda v: st.sampled_from([v, -v])
        )
        clauses = data.draw(
            st.lists(st.lists(literals, min_size=1, max_size=3), min_size=0, max_size=6)
        )
        assert solve_sat(clauses, num_vars) == brute_force_sat(clauses, num_vars)

    def test_all_solutions_from_one_pass(self):
        """Every satisfying assignment, not a sample of them."""
        clauses = [[1, 2, 3]]
        assert len(solve_sat(clauses, 3)) == 7

    def test_pattern_backend(self):
        clauses = [[1, 2], [-1, 3], [-2, -3]]
        dense = solve_sat(clauses, 3)
        compressed = solve_sat(clauses, 8, backend="pattern", chunk_ways=6)
        # extra unconstrained variables multiply the solution count
        assert len(compressed) == len(brute_force_sat(clauses, 8))

    def test_errors(self):
        with pytest.raises(ReproError):
            solve_sat([[]], 2)
        with pytest.raises(ReproError):
            solve_sat([[5]], 2)
        with pytest.raises(ReproError):
            solve_sat([], 0)


class TestCompileSat:
    def test_compiled_formula_runs_on_hardware(self):
        from repro.apps.search import compile_sat
        from repro.cpu import PipelinedSimulator

        clauses = [[1, 2], [-1, 3], [-2, -3]]
        program, reg = compile_sat(clauses, 3)
        sim = PipelinedSimulator(ways=3)
        sim.load(program)
        sim.run()
        result = sim.machine.read_qreg(reg)
        assert sorted(result.iter_ones()) == brute_force_sat(clauses, 3)

    def test_matches_direct_solver(self):
        from repro.apps.search import compile_sat
        from repro.cpu import FunctionalSimulator

        clauses = [[1, 2, 3], [-2], [1, -3]]
        program, reg = compile_sat(clauses, 4)
        sim = FunctionalSimulator(ways=4)
        sim.load(program)
        sim.run()
        assert sorted(sim.machine.read_qreg(reg).iter_ones()) == solve_sat(clauses, 4)

    def test_validation(self):
        from repro.apps.search import compile_sat

        with pytest.raises(ReproError):
            compile_sat([[]], 2)
        with pytest.raises(ReproError):
            compile_sat([[9]], 2)


class TestInvertFunction:
    def test_parity_preimages(self):
        def odd_parity(alg, bits):
            acc = bits[0]
            for b in bits[1:]:
                acc = alg.bxor(acc, b)
            return acc

        result = invert_function(odd_parity, 4)
        assert result == [x for x in range(16) if bin(x).count("1") % 2 == 1]

    def test_majority(self):
        def majority(alg, bits):
            a, b, c = bits
            return alg.bor(alg.bor(alg.band(a, b), alg.band(a, c)), alg.band(b, c))

        result = invert_function(majority, 3)
        assert result == [3, 5, 6, 7]

    def test_empty_input_rejected(self):
        with pytest.raises(ReproError):
            invert_function(lambda alg, bits: bits[0], 0)
