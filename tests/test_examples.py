"""Smoke tests: every example script runs clean and prints its headline."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CASES = {
    "quickstart.py": "[0, 1, 3, 5, 15]",
    "factoring_on_hardware.py": "$0 = 5, $1 = 3",
    "sat_in_superposition.py": "satisfying assignments found in ONE pass",
    "pipeline_explorer.py": "stage by stage",
    "beyond_the_hardware_limit.py": "(641, 769)",
    "graph_coloring.py": "chromatic number",
}


@pytest.mark.parametrize("script,expected", sorted(CASES.items()))
def test_example_runs(script, expected):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert expected in result.stdout


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(CASES), "update CASES when adding examples"
