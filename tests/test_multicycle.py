"""Multi-cycle simulator: per-class cycle accounting."""

import pytest

from repro.asm import assemble
from repro.cpu import CycleCosts, MultiCycleSimulator
from repro.errors import HaltedError, SimulatorError


class TestCycleCosts:
    def test_default_costs(self):
        costs = CycleCosts()
        assert costs.cycles_for("add") == 3
        assert costs.cycles_for("load") == 4
        assert costs.cycles_for("mul") == 4

    def test_two_word_instructions_pay_extra_fetch(self):
        costs = CycleCosts()
        assert costs.cycles_for("qand") == costs.qat + 1
        assert costs.cycles_for("qnot") == costs.qat

    def test_custom_costs(self):
        costs = CycleCosts(alu=1, extra_fetch_word=2)
        assert costs.cycles_for("add") == 1
        assert costs.cycles_for("qxor") == costs.qat + 2


class TestExecution:
    def test_total_cycles(self):
        sim = MultiCycleSimulator(ways=6)
        sim.load(assemble("lex $0, 1\nhad @0, 2\nand @1, @0, @0\nsys\n"))
        total = sim.run()
        costs = sim.costs
        expected = (
            costs.cycles_for("lex")
            + costs.cycles_for("qhad")
            + costs.cycles_for("qand")
            + costs.cycles_for("sys")
        )
        assert total == expected

    def test_architectural_equivalence_with_functional(self):
        from repro.cpu import FunctionalSimulator
        import numpy as np

        src = (
            "lex $0, 3\nloop: had @0, 1\nnext $1, @0\nadd $2, $1\n"
            "lex $3, -1\nadd $0, $3\nbrt $0, loop\nsys\n"
        )
        p = assemble(src)
        f = FunctionalSimulator(ways=6)
        f.load(p)
        f.run()
        m = MultiCycleSimulator(ways=6)
        m.load(p)
        m.run()
        assert np.array_equal(f.machine.regs, m.machine.regs)
        assert np.array_equal(f.machine.qregs, m.machine.qregs)

    def test_cpi_above_one(self):
        sim = MultiCycleSimulator(ways=6)
        sim.load(assemble("lex $0, 1\nsys\n"))
        sim.run()
        assert sim.cpi == 3.0

    def test_step_after_halt(self):
        sim = MultiCycleSimulator(ways=6)
        sim.load(assemble("sys\n"))
        sim.run()
        with pytest.raises(HaltedError):
            sim.step()

    def test_runaway_guard(self):
        sim = MultiCycleSimulator(ways=6)
        sim.load(assemble("spin: br spin\n"))
        with pytest.raises(SimulatorError):
            sim.run(max_steps=50)

    def test_cpi_zero_before_running(self):
        sim = MultiCycleSimulator(ways=6)
        assert sim.cpi == 0.0
