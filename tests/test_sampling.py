"""Coupon-collector analysis for the QVP experiment."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.quantum import (
    QuantumSimulator,
    expected_runs_to_see_all,
    runs_to_collect_all,
)


class TestExpectedRuns:
    def test_single_outcome(self):
        assert expected_runs_to_see_all([1.0]) == pytest.approx(1.0)

    def test_uniform_two(self):
        # classic: E = 3 for a fair coin
        assert expected_runs_to_see_all([0.5, 0.5]) == pytest.approx(3.0)

    def test_uniform_n_matches_harmonic_formula(self):
        for n in (3, 4, 6):
            expected = n * sum(1 / k for k in range(1, n + 1))
            assert expected_runs_to_see_all([1 / n] * n) == pytest.approx(expected)

    def test_skew_increases_runs(self):
        uniform = expected_runs_to_see_all([0.25] * 4)
        skewed = expected_runs_to_see_all([0.85, 0.05, 0.05, 0.05])
        assert skewed > uniform

    def test_zero_probabilities_ignored(self):
        assert expected_runs_to_see_all([0.5, 0.5, 0.0]) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            expected_runs_to_see_all([0.0])

    def test_too_many_outcomes_rejected(self):
        with pytest.raises(ReproError):
            expected_runs_to_see_all([1 / 25] * 25)


class TestMonteCarlo:
    def test_matches_analytic_on_average(self, rng):
        counts = {0: 1, 1: 1, 2: 1, 3: 1}

        def prepare():
            sim = QuantumSimulator(2)
            sim.prepare_distribution(counts)
            return sim

        runs = [runs_to_collect_all(prepare, 4, rng) for _ in range(300)]
        analytic = expected_runs_to_see_all([0.25] * 4)
        assert abs(np.mean(runs) - analytic) < 1.0

    def test_every_run_needs_fresh_preparation(self, rng):
        """Each quantum run re-prepares: measurement destroyed the state."""
        preparations = []

        def prepare():
            sim = QuantumSimulator(2)
            sim.prepare_distribution({0: 1, 1: 1})
            preparations.append(1)
            return sim

        runs = runs_to_collect_all(prepare, 2, rng)
        assert len(preparations) == runs >= 2

    def test_budget_guard(self, rng):
        def prepare():
            sim = QuantumSimulator(2)
            sim.prepare_distribution({0: 1})
            return sim

        with pytest.raises(ReproError):
            runs_to_collect_all(prepare, 2, rng, max_runs=10)
