"""bfloat16 ALU tests: bit-exactness, LUT reciprocal, vector parity."""

import math
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bf16 import (
    RECIP_LUT,
    bf16_add,
    bf16_from_float,
    bf16_from_int,
    bf16_mul,
    bf16_neg,
    bf16_recip,
    bf16_to_float,
    bf16_to_int,
)
from repro.bf16 import vector
from repro.bf16.scalar import (
    NAN,
    NEG_INF,
    POS_INF,
    is_inf,
    is_nan,
    is_zero_or_subnormal,
)

normal_bits = st.integers(min_value=0, max_value=0xFFFF).filter(
    lambda b: not (is_nan(b) or is_inf(b) or is_zero_or_subnormal(b))
)
any_bits = st.integers(min_value=0, max_value=0xFFFF)


class TestConversions:
    def test_float32_prefix_property(self):
        """A bfloat16 is exactly a float32 with 16 zero bits catenated."""
        for bits in (0x3F80, 0xC000, 0x4248, 0x0001 | 0x3F80):
            value = bf16_to_float(bits)
            (f32,) = struct.unpack(">I", struct.pack(">f", value))
            assert f32 >> 16 == bits
            assert f32 & 0xFFFF == 0

    def test_known_values(self):
        assert bf16_to_float(0x3F80) == 1.0
        assert bf16_to_float(0x4000) == 2.0
        assert bf16_to_float(0xBF80) == -1.0
        assert bf16_to_float(0x3FC0) == 1.5

    def test_round_to_nearest_even(self):
        # 1 + 2^-8 is exactly halfway between two bf16 values; RNE picks even.
        assert bf16_from_float(1.0 + 2.0**-8) == 0x3F80
        assert bf16_from_float(1.0 + 3 * 2.0**-8) == 0x3F82

    def test_subnormals_flush(self):
        assert bf16_from_float(1e-40) == 0x0000
        assert bf16_from_float(-1e-40) == 0x8000
        assert bf16_to_float(0x0001) == 0.0  # subnormal input reads as 0

    def test_overflow_to_inf(self):
        assert bf16_from_float(1e40) == POS_INF
        assert bf16_from_float(-1e40) == NEG_INF

    def test_nan(self):
        assert bf16_from_float(float("nan")) == NAN
        assert math.isnan(bf16_to_float(NAN))

    @given(normal_bits)
    def test_roundtrip_is_identity(self, bits):
        assert bf16_from_float(bf16_to_float(bits)) == bits

    def test_rejects_out_of_range_pattern(self):
        with pytest.raises(ValueError):
            bf16_to_float(0x10000)


class TestAddMul:
    @given(normal_bits, normal_bits)
    def test_add_is_correctly_rounded(self, a, b):
        expected = bf16_from_float(bf16_to_float(a) + bf16_to_float(b))
        assert bf16_add(a, b) == expected

    @given(normal_bits, normal_bits)
    def test_mul_is_correctly_rounded(self, a, b):
        expected = bf16_from_float(bf16_to_float(a) * bf16_to_float(b))
        assert bf16_mul(a, b) == expected

    @given(any_bits)
    def test_add_zero_identity(self, a):
        if is_nan(a) or is_zero_or_subnormal(a):
            return
        assert bf16_add(a, 0x0000) == a

    @given(any_bits)
    def test_mul_one_identity(self, a):
        if is_nan(a) or is_zero_or_subnormal(a):
            return
        assert bf16_mul(a, 0x3F80) == a

    def test_inf_minus_inf_is_nan(self):
        assert bf16_add(POS_INF, NEG_INF) == NAN

    def test_inf_times_zero_is_nan(self):
        assert bf16_mul(POS_INF, 0x0000) == NAN

    @given(normal_bits, normal_bits)
    def test_commutativity(self, a, b):
        assert bf16_add(a, b) == bf16_add(b, a)
        assert bf16_mul(a, b) == bf16_mul(b, a)


class TestNeg:
    @given(normal_bits)
    def test_neg_involution(self, a):
        assert bf16_neg(bf16_neg(a)) == a

    def test_neg_nan(self):
        assert bf16_neg(NAN) == NAN

    def test_neg_zero(self):
        assert bf16_neg(0x0000) == 0x8000


class TestRecip:
    def test_lut_has_128_entries(self):
        assert len(RECIP_LUT) == 128

    def test_lut_entry_zero_is_exact_one(self):
        assert RECIP_LUT[0] == (0, 0)

    def test_exhaustive_against_rne(self):
        """The LUT reciprocal is bit-exact RNE for every normal input."""
        for bits in range(0x10000):
            if is_nan(bits) or is_inf(bits) or is_zero_or_subnormal(bits):
                continue
            expected = bf16_from_float(1.0 / bf16_to_float(bits))
            assert bf16_recip(bits) == expected, hex(bits)

    def test_special_cases(self):
        assert bf16_recip(POS_INF) == 0x0000
        assert bf16_recip(NEG_INF) == 0x8000
        assert bf16_recip(0x0000) == POS_INF
        assert bf16_recip(0x8000) == NEG_INF
        assert bf16_recip(NAN) == NAN


class TestIntConversion:
    @given(st.integers(min_value=-128, max_value=127))
    def test_small_ints_roundtrip_exactly(self, value):
        assert bf16_to_int(bf16_from_int(value)) == value & 0xFFFF

    def test_truncates_toward_zero(self):
        assert bf16_to_int(bf16_from_float(2.75)) == 2
        assert bf16_to_int(bf16_from_float(-2.75)) == (-2) & 0xFFFF

    def test_saturates(self):
        assert bf16_to_int(bf16_from_float(1e20)) == 32767
        assert bf16_to_int(bf16_from_float(-1e20)) == (-32768) & 0xFFFF

    def test_nan_converts_to_zero(self):
        assert bf16_to_int(NAN) == 0

    def test_accepts_register_patterns(self):
        # 0xFFFF as a register pattern means -1.
        assert bf16_from_int(0xFFFF) == bf16_from_float(-1.0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            bf16_from_int(1 << 17)


class TestVectorParity:
    @settings(max_examples=20)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_add_mul_neg_match_scalar(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 0x10000, 256).astype(np.uint16)
        b = rng.integers(0, 0x10000, 256).astype(np.uint16)
        va, vm, vn = vector.add(a, b), vector.mul(a, b), vector.neg(a)
        for i in range(256):
            assert int(va[i]) == bf16_add(int(a[i]), int(b[i]))
            assert int(vm[i]) == bf16_mul(int(a[i]), int(b[i]))
            assert int(vn[i]) == bf16_neg(int(a[i]))

    def test_encode_decode_roundtrip(self):
        bits = np.array([0x3F80, 0x4000, 0xC0A0], dtype=np.uint16)
        assert np.array_equal(vector.encode(vector.decode(bits)), bits)
