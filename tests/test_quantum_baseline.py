"""FIG2-5 experiment: the quantum baseline's gate and measurement
semantics, and the contrast with PBP's non-destructive measurement."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.quantum import QuantumSimulator


def probs(sim):
    return sim.probabilities()


class TestInitialization:
    def test_starts_in_zero(self):
        sim = QuantumSimulator(3)
        assert probs(sim)[0] == 1.0

    def test_reset_to_basis_state(self):
        sim = QuantumSimulator(3)
        sim.reset(5)
        assert probs(sim)[5] == 1.0

    def test_reset_range_checked(self):
        with pytest.raises(ReproError):
            QuantumSimulator(2).reset(4)

    def test_qubit_count_limits(self):
        with pytest.raises(ReproError):
            QuantumSimulator(0)
        with pytest.raises(ReproError):
            QuantumSimulator(25)


class TestGates:
    def test_x_flips(self):
        sim = QuantumSimulator(2)
        sim.x(0)
        assert probs(sim)[1] == 1.0
        sim.x(1)
        assert probs(sim)[3] == 1.0

    def test_h_creates_superposition(self):
        sim = QuantumSimulator(1)
        sim.h(0)
        assert np.allclose(probs(sim), [0.5, 0.5])

    def test_h_is_its_own_inverse(self):
        """Figure 2's note: the Hadamard is its own inverse."""
        sim = QuantumSimulator(1)
        sim.x(0)
        sim.h(0)
        sim.h(0)
        assert np.allclose(probs(sim), [0.0, 1.0])

    def test_cnot_truth_table(self):
        for control_val in (0, 1):
            sim = QuantumSimulator(2)
            if control_val:
                sim.x(1)  # control is qubit 1
            sim.cnot(0, 1)
            expected = (control_val << 1) | control_val
            assert probs(sim)[expected] == 1.0

    def test_bell_state_entanglement(self):
        sim = QuantumSimulator(2)
        sim.h(0)
        sim.cnot(1, 0)
        p = probs(sim)
        assert np.allclose(p[[0, 3]], 0.5) and np.allclose(p[[1, 2]], 0.0)

    def test_ccnot_requires_both_controls(self):
        for c1 in (0, 1):
            for c2 in (0, 1):
                sim = QuantumSimulator(3)
                if c1:
                    sim.x(1)
                if c2:
                    sim.x(2)
                sim.ccnot(0, 1, 2)
                expected = (c2 << 2) | (c1 << 1) | (c1 & c2)
                assert probs(sim)[expected] == 1.0

    def test_swap(self):
        sim = QuantumSimulator(2)
        sim.x(0)
        sim.swap(0, 1)
        assert probs(sim)[2] == 1.0

    def test_cswap_conditional(self):
        sim = QuantumSimulator(3)
        sim.x(0)
        sim.cswap(0, 1, 2)  # control (qubit 2) is 0: no swap
        assert probs(sim)[1] == 1.0
        sim.x(2)
        sim.cswap(0, 1, 2)  # control now 1: swap
        assert probs(sim)[0b110] == 1.0

    def test_gates_are_involutions(self, rng):
        sim = QuantumSimulator(3, rng)
        sim.h(0)
        sim.h(1)
        state = sim.state.copy()
        for apply_twice in (
            lambda: sim.x(2),
            lambda: sim.cnot(2, 0),
            lambda: sim.ccnot(2, 0, 1),
            lambda: sim.swap(0, 2),
            lambda: sim.cswap(0, 1, 2),
        ):
            apply_twice()
            apply_twice()
            assert np.allclose(sim.state, state)

    def test_distinct_qubits_enforced(self):
        sim = QuantumSimulator(2)
        with pytest.raises(ReproError):
            sim.cnot(0, 0)
        with pytest.raises(ReproError):
            sim.swap(1, 1)

    def test_norm_preserved(self, rng):
        sim = QuantumSimulator(4, rng)
        for k in range(4):
            sim.h(k)
        sim.ccnot(0, 1, 2)
        sim.cswap(1, 2, 3)
        assert np.isclose(np.linalg.norm(sim.state), 1.0)


class TestDestructiveMeasurement:
    def test_measurement_collapses(self, rng):
        """Figure 5: after measuring, the superposition is gone."""
        sim = QuantumSimulator(1, rng)
        sim.h(0)
        outcome = sim.measure(0)
        assert probs(sim)[outcome] == pytest.approx(1.0)

    def test_entangled_partner_locks(self, rng):
        """Measuring one half of a Bell pair fixes the other."""
        sim = QuantumSimulator(2, rng)
        sim.h(0)
        sim.cnot(1, 0)
        a = sim.measure(0)
        b = sim.measure(1)
        assert a == b

    def test_repeated_measurement_is_stable(self, rng):
        sim = QuantumSimulator(3, rng)
        for k in range(3):
            sim.h(k)
        first = sim.measure_all()
        assert sim.measure_all() == first  # collapsed: no new information

    def test_one_value_per_run(self, rng):
        """Section 2.7: 'only one [answer] can be examined per run' --
        unlike PBP, which reads the whole distribution non-destructively."""
        from repro.pbp import PbpContext

        counts = {1: 1, 3: 1, 5: 1, 15: 1}
        sim = QuantumSimulator(4, rng)
        sim.prepare_distribution(counts)
        outcome = sim.measure_all()
        assert outcome in counts
        assert probs(sim)[outcome] == pytest.approx(1.0)  # others lost
        # PBP: the same distribution yields every value in one pass.
        ctx = PbpContext(ways=4)
        b = ctx.pint_h(4, 0xF)
        values = b.measure()
        assert values == list(range(16))  # all present, value intact

    def test_probability_of_one(self, rng):
        sim = QuantumSimulator(2, rng)
        sim.h(1)
        assert sim.probability_of_one(1) == pytest.approx(0.5)
        assert sim.probability_of_one(0) == pytest.approx(0.0)

    def test_sampling_follows_distribution(self, rng):
        counts = {0: 3, 7: 1}
        outcomes = []
        for _ in range(400):
            sim = QuantumSimulator(3, rng)
            sim.prepare_distribution(counts)
            outcomes.append(sim.measure_all())
        frac = outcomes.count(0) / len(outcomes)
        assert 0.65 < frac < 0.85  # expect 0.75

    def test_prepare_distribution_validation(self, rng):
        sim = QuantumSimulator(2, rng)
        with pytest.raises(ReproError):
            sim.prepare_distribution({})
        with pytest.raises(ReproError):
            sim.prepare_distribution({9: 1})
