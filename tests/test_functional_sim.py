"""Functional simulator behaviour: loading, stepping, halting, errors."""

import numpy as np
import pytest

from repro.asm import assemble
from repro.cpu import FunctionalSimulator
from repro.cpu.trace import ExecutionTrace
from repro.errors import HaltedError, SimulatorError


class TestLifecycle:
    def test_load_raw_words(self):
        sim = FunctionalSimulator(ways=6)
        sim.load([0x1700])  # sys
        sim.run()
        assert sim.machine.halted

    def test_step_returns_effects(self):
        sim = FunctionalSimulator(ways=6)
        sim.load(assemble("lex $0, 9\nsys\n"))
        eff = sim.step()
        assert eff.mnemonic == "lex"
        assert eff.writes_gpr == frozenset({0})

    def test_step_after_halt_raises(self):
        sim = FunctionalSimulator(ways=6)
        sim.load(assemble("sys\n"))
        sim.run()
        with pytest.raises(HaltedError):
            sim.step()

    def test_run_budget(self):
        sim = FunctionalSimulator(ways=6)
        sim.load(assemble("spin:\tbr spin\n"))
        with pytest.raises(SimulatorError):
            sim.run(max_steps=100)

    def test_instret_counts(self):
        sim = FunctionalSimulator(ways=6)
        sim.load(assemble("lex $0, 1\nlex $1, 2\nsys\n"))
        sim.run()
        assert sim.machine.instret == 3

    def test_origin_entry(self):
        p = assemble(".origin 0x40\nstart: lex $0, 3\nsys\n", origin=0x40)
        sim = FunctionalSimulator(ways=6)
        sim.load(p, origin=0x40)
        sim.run()
        assert sim.machine.read_reg(0) == 3


class TestTrace:
    def test_trace_records(self):
        trace = ExecutionTrace()
        sim = FunctionalSimulator(ways=6, trace=trace)
        sim.load(assemble("lex $0, 1\nhad @0, 2\nsys\n"))
        sim.run()
        assert len(trace) == 3
        assert trace.entries[0].instr.mnemonic == "lex"
        assert trace.mix() == {"alu": 1, "qat": 1, "sys": 1}

    def test_trace_limit(self):
        trace = ExecutionTrace(limit=1)
        sim = FunctionalSimulator(ways=6, trace=trace)
        sim.load(assemble("lex $0, 1\nlex $1, 2\nsys\n"))
        sim.run()
        assert len(trace) == 1

    def test_trace_render(self):
        trace = ExecutionTrace()
        sim = FunctionalSimulator(ways=6, trace=trace)
        sim.load(assemble("lex $0, 1\nsys\n"))
        sim.run()
        assert "lex" in trace.render()


class TestStateIntegrity:
    def test_snapshot_captures_state(self):
        sim = FunctionalSimulator(ways=6)
        sim.load(assemble("lex $0, 5\nhad @3, 1\nsys\n"))
        sim.run()
        snap = sim.machine.snapshot()
        assert snap["regs"][0] == 5
        assert snap["halted"]
        assert not np.array_equal(snap["qregs"][3], np.zeros_like(snap["qregs"][3]))

    def test_memory_wraps_16_bit_addresses(self):
        sim = FunctionalSimulator(ways=6)
        sim.machine.write_mem(0x1FFFF, 42)
        assert sim.machine.read_mem(0xFFFF) == 42

    def test_write_reg_truncates(self):
        sim = FunctionalSimulator(ways=6)
        sim.machine.write_reg(0, 0x12345)
        assert sim.machine.read_reg(0) == 0x2345

    def test_read_reg_signed(self):
        sim = FunctionalSimulator(ways=6)
        sim.machine.write_reg(0, 0xFFFF)
        assert sim.machine.read_reg_signed(0) == -1

    def test_program_too_big_rejected(self):
        sim = FunctionalSimulator(ways=6)
        with pytest.raises(SimulatorError):
            sim.machine.load_program([0] * 10, origin=0xFFFF)

    def test_bad_ways_rejected(self):
        # The dense bound is MAX_DENSE_WAYS (26), not the old hardcoded
        # 20; anything past it must name the RE backend as the way out.
        from repro.cpu import MachineState

        with pytest.raises(SimulatorError, match="'re' backend"):
            MachineState(ways=27)

    def test_write_qreg_checks_ways(self):
        from repro.aob import AoB

        sim = FunctionalSimulator(ways=6)
        with pytest.raises(SimulatorError):
            sim.machine.write_qreg(0, AoB.zeros(8))
