"""S31 experiment: pipelined simulator timing and state equivalence.

Covers the paper's section 3.1 observables: sustained 1 instruction per
cycle absent interlocks, 4- and 5-stage variants, two-word Qat fetch
handling, plus the hazard machinery -- and proves the pipelined model
architecturally equivalent to the functional reference on random
programs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.cpu import (
    FunctionalSimulator,
    PipelineConfig,
    PipelinedSimulator,
)
from repro.errors import SimulatorError
from repro.isa import INSTRUCTIONS, Instr, encode

from tests.conftest import assemble_and_run


def run_pipeline(src, ways=6, **cfg):
    if "sys" not in src:
        src += "\nlex $rv, 0\nsys\n"
    sim = PipelinedSimulator(ways=ways, config=PipelineConfig(**cfg))
    sim.load(assemble(src))
    sim.run()
    return sim


class TestSustainedThroughput:
    def test_straight_line_cpi_approaches_one(self):
        """Section 3.1: 1 instruction/cycle absent interlocks."""
        body = "\n".join(f"lex ${i % 8}, {i % 100}" for i in range(400))
        sim = run_pipeline(body)
        assert sim.stats.cpi < 1.01

    def test_fill_overhead_is_pipeline_depth(self):
        sim = run_pipeline("lex $0, 1")  # 3 instructions with epilogue
        # cycles = instructions + fill (2 for the 4-stage: IF and ID ahead of EX)
        assert sim.stats.cycles == sim.stats.retired + 2

    def test_qat_heavy_code_also_sustains(self):
        """1-word Qat ops (had/not/zero) flow at 1 per cycle too."""
        body = "\n".join(f"had @{i % 16}, {i % 8}" for i in range(200))
        sim = run_pipeline(body)
        assert sim.stats.cpi < 1.02


class TestVariableLengthFetch:
    def test_two_word_instructions_cost_one_bubble(self):
        body = "\n".join("and @2, @0, @1" for _ in range(100))
        sim = run_pipeline(body)
        assert sim.stats.fetch_extra == 100
        # ~2 cycles per 2-word instruction
        assert 200 <= sim.stats.cycles <= 210

    def test_mixed_width_stream(self):
        sim = run_pipeline("had @0, 1\nand @1, @0, @0\nnot @1\nxor @2, @0, @1")
        assert sim.stats.fetch_extra == 2  # and + xor


class TestDataHazards:
    def test_forwarding_hides_raw(self):
        sim = run_pipeline("lex $0, 5\nadd $0, $0\nadd $0, $0", forwarding=True)
        assert sim.stats.stall_data == 0
        assert sim.machine.read_reg(0) == 20

    def test_no_forwarding_stalls(self):
        sim = run_pipeline("lex $0, 5\nadd $0, $0\nadd $0, $0", forwarding=False)
        assert sim.stats.stall_data == 2
        assert sim.machine.read_reg(0) == 20

    def test_qat_raw_hazard_interlocks(self):
        """Coprocessor values participate in interlock decisions: the
        in-place not reads @0 while the had that writes it is in EX."""
        sim = run_pipeline("had @0, 1\nnot @0\nnot @0", forwarding=False)
        assert sim.stats.stall_data > 0
        from repro.aob import AoB

        assert sim.machine.read_qreg(0) == AoB.hadamard(6, 1)

    def test_meas_depends_on_qat_producer(self):
        """meas reads the @-register an older Qat op writes."""
        sim = run_pipeline(
            "had @0, 2\nlex $0, 4\nmeas $0, @0", forwarding=False
        )
        assert sim.machine.read_reg(0) == 1
        assert sim.stats.stall_data > 0

    def test_load_use_bubble_in_5_stage(self):
        src = "loadi $1, 0x100\nlex $0, 9\nstore $0, $1\nload $2, $1\nadd $2, $2"
        four = run_pipeline(src, stages=4)
        five = run_pipeline(src, stages=5)
        assert four.stats.stall_load_use == 0
        assert five.stats.stall_load_use == 1
        assert four.machine.read_reg(2) == five.machine.read_reg(2) == 18

    def test_independent_instructions_no_stall(self):
        sim = run_pipeline("lex $0, 1\nlex $1, 2\nadd $0, $1", forwarding=False)
        # only the add depends on the two lex results
        assert sim.stats.stall_data <= 2


class TestControlHazards:
    def test_taken_branch_two_cycle_penalty(self):
        base = run_pipeline("lex $0, 1\nlex $1, 1\nlex $2, 1")
        taken = run_pipeline("lex $0, 1\nbrt $0, skip\nskip:\nlex $2, 1")
        # Same dynamic instruction count (5 each with the epilogue); the
        # taken branch costs exactly the 2-cycle flush.
        assert taken.stats.branch_flushes == 1
        assert taken.stats.retired == base.stats.retired
        assert taken.stats.cycles == base.stats.cycles + 2

    def test_untaken_branch_no_penalty(self):
        sim = run_pipeline("lex $0, 0\nbrt $0, skip\nlex $1, 1\nskip:\nlex $2, 1")
        assert sim.stats.branch_flushes == 0

    def test_jumpr_flushes(self):
        sim = run_pipeline(
            "loadi $3, target\njumpr $3\nlex $0, 99\ntarget:\nlex $1, 7"
        )
        assert sim.stats.branch_flushes >= 1
        assert sim.machine.read_reg(0) == 0

    def test_loop_penalty_scales_with_iterations(self):
        src = (
            "lex $0, 10\nloop:\nlex $2, -1\nadd $0, $2\nbrt $0, loop"
        )
        sim = run_pipeline(src)
        assert sim.stats.branch_flushes == 9

    def test_wrong_path_side_effects_squashed(self):
        """Wrong-path instructions must not change architectural state."""
        sim = run_pipeline(
            "lex $0, 1\nbrt $0, skip\nlex $5, 77\nlex $6, 88\nskip:\nlex $2, 1"
        )
        assert sim.machine.read_reg(5) == 0
        assert sim.machine.read_reg(6) == 0


class TestStructuralHazard:
    def test_single_write_port_penalizes_swaps(self):
        src = "had @0, 1\nhad @1, 2\none @2\nswap @0, @1\ncswap @0, @1, @2"
        fast = run_pipeline(src, second_qat_write_port=True)
        slow = run_pipeline(src, second_qat_write_port=False)
        assert slow.stats.stall_structural == 2
        # Part of the extra EX time hides under the 2-word fetch bubble of
        # the following instruction, so the visible cost is 1-2 cycles.
        assert fast.stats.cycles < slow.stats.cycles <= fast.stats.cycles + 2
        assert np.array_equal(fast.machine.qregs, slow.machine.qregs)


class TestConfig:
    def test_bad_stage_count(self):
        with pytest.raises(ValueError):
            PipelineConfig(stages=6)

    def test_runaway_guard(self):
        sim = PipelinedSimulator(ways=6)
        sim.load(assemble("spin: br spin\n"))
        with pytest.raises(SimulatorError):
            sim.run(max_cycles=200)

    def test_executing_garbage_raises(self):
        sim = PipelinedSimulator(ways=6)
        sim.load([0x6000])  # unassigned opcode on the true path
        with pytest.raises(SimulatorError):
            sim.run(max_cycles=50)


# ---------------------------------------------------------------------------
# Random-program equivalence with the functional reference
# ---------------------------------------------------------------------------

SAFE_ALU = ["add", "and", "or", "xor", "mul", "slt", "shift", "copy"]
SAFE_UNARY = ["neg", "not", "float", "int", "negf", "recip"]
QAT3 = ["qand", "qor", "qxor", "qccnot", "qcswap"]


def random_program(data):
    """Random terminating instruction list (forward branches only)."""
    instrs: list[Instr] = []
    n = data.draw(st.integers(min_value=5, max_value=40))
    for _ in range(n):
        kind = data.draw(
            st.sampled_from(["imm", "alu", "unary", "load", "qat3", "qat1",
                             "qhad", "qmeas", "branch"])
        )
        r = lambda: data.draw(st.integers(0, 9))
        q = lambda: data.draw(st.integers(0, 7))
        if kind == "imm":
            instrs.append(Instr(data.draw(st.sampled_from(["lex", "lhi"])),
                                (r(), data.draw(st.integers(0, 255)))))
        elif kind == "alu":
            instrs.append(Instr(data.draw(st.sampled_from(SAFE_ALU)), (r(), r())))
        elif kind == "unary":
            instrs.append(Instr(data.draw(st.sampled_from(SAFE_UNARY)), (r(),)))
        elif kind == "load":
            instrs.append(Instr("load", (r(), r())))
        elif kind == "qat3":
            m = data.draw(st.sampled_from(QAT3))
            instrs.append(Instr(m, (q(), q(), q())))
        elif kind == "qat1":
            m = data.draw(st.sampled_from(["qnot", "qzero", "qone"]))
            instrs.append(Instr(m, (q(),)))
        elif kind == "qhad":
            instrs.append(Instr("qhad", (q(), data.draw(st.integers(0, 7)))))
        elif kind == "qmeas":
            m = data.draw(st.sampled_from(["qmeas", "qnext", "qpop"]))
            instrs.append(Instr(m, (r(), q())))
        else:
            instrs.append(("branch", r(), data.draw(st.integers(1, 3))))
    instrs.append(Instr("lex", (12, 0)))
    instrs.append(Instr("sys", ()))
    # Serialize, converting branch markers to word offsets over the next
    # k instructions (forward only: the program always terminates).
    words: list[int] = []
    sizes = []
    resolved: list[Instr] = []
    for item in instrs:
        if isinstance(item, tuple) and item[0] == "branch":
            resolved.append(item)
        else:
            resolved.append(item)
    out_words: list[int] = []
    for idx, item in enumerate(resolved):
        if isinstance(item, tuple):
            _, reg, skip = item
            offset = 0
            taken = 0
            j = idx + 1
            # Never skip into or past the halt epilogue (last 2 instrs).
            while j < len(resolved) - 2 and taken < skip:
                nxt = resolved[j]
                offset += 1 if isinstance(nxt, tuple) else INSTRUCTIONS[nxt.mnemonic].words
                taken += 1
                j += 1
            mnem = "brt" if reg % 2 else "brf"
            out_words.extend(encode(Instr(mnem, (reg, min(offset, 127)))))
        else:
            out_words.extend(encode(item))
    return out_words


class TestEquivalenceWithFunctional:
    @settings(max_examples=40, deadline=None)
    @given(st.data(), st.sampled_from(
        [(4, True), (4, False), (5, True), (5, False)]))
    def test_random_programs_match(self, data, shape):
        stages, forwarding = shape
        words = random_program(data)
        ref = FunctionalSimulator(ways=6)
        ref.load(words)
        ref.run(max_steps=5000)
        pipe = PipelinedSimulator(
            ways=6, config=PipelineConfig(stages=stages, forwarding=forwarding)
        )
        pipe.load(words)
        pipe.run(max_cycles=50000)
        assert np.array_equal(ref.machine.regs, pipe.machine.regs)
        assert np.array_equal(ref.machine.qregs, pipe.machine.qregs)
        assert ref.machine.instret == pipe.machine.instret
        assert pipe.stats.cycles >= ref.machine.instret
