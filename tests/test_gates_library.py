"""Arithmetic circuit library vs plain integer arithmetic.

Every operation is checked over *all* entanglement channels: the
superposed result must equal the classical function applied channel-wise.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.aob import AoB
from repro.gates import library
from repro.gates.alg import ValueAlgebra


def alg_and_inputs(ways, width, base=0):
    """Hadamard word over channel sets base..base+width-1, plus the
    channel-wise classical values."""
    alg = ValueAlgebra(ways, AoB)
    bits = [alg.had(base + i) for i in range(width)]
    values = [(e >> base) & ((1 << width) - 1) for e in range(1 << ways)]
    return alg, bits, values


def read_word(bits, channel):
    return sum(bit.meas(channel) << i for i, bit in enumerate(bits))


class TestFullAdder:
    def test_truth_table(self):
        alg = ValueAlgebra(3, AoB)
        a, b, c = alg.had(0), alg.had(1), alg.had(2)
        total, carry = library.full_adder(alg, a, b, c)
        for e in range(8):
            bits = (e & 1) + ((e >> 1) & 1) + ((e >> 2) & 1)
            assert total.meas(e) == bits & 1
            assert carry.meas(e) == bits >> 1


class TestRippleAdd:
    @given(st.integers(min_value=1, max_value=4))
    def test_all_pairs(self, width):
        ways = 2 * width
        alg = ValueAlgebra(ways, AoB)
        a = [alg.had(i) for i in range(width)]
        b = [alg.had(width + i) for i in range(width)]
        total, carry = library.ripple_add(alg, a, b)
        mask = (1 << width) - 1
        for e in range(1 << ways):
            va, vb = e & mask, (e >> width) & mask
            assert read_word(total, e) == (va + vb) & mask
            assert carry.meas(e) == (va + vb) >> width

    def test_carry_in(self):
        alg, a, _ = alg_and_inputs(4, 2, 0)
        _, b, _ = ValueAlgebra, None, None
        b = [alg.had(2 + i) for i in range(2)]
        total, _ = library.ripple_add(alg, a, b, carry_in=alg.const(1))
        for e in range(16):
            assert read_word(total, e) == ((e & 3) + (e >> 2) + 1) & 3

    def test_width_mismatch(self):
        alg = ValueAlgebra(2, AoB)
        with pytest.raises(ValueError):
            library.ripple_add(alg, [alg.const(0)], [alg.const(0)] * 2)

    def test_empty_rejected(self):
        alg = ValueAlgebra(2, AoB)
        with pytest.raises(ValueError):
            library.ripple_add(alg, [], [])


class TestRippleSub:
    @given(st.integers(min_value=1, max_value=4))
    def test_all_pairs(self, width):
        ways = 2 * width
        alg = ValueAlgebra(ways, AoB)
        a = [alg.had(i) for i in range(width)]
        b = [alg.had(width + i) for i in range(width)]
        diff, borrow = library.ripple_sub(alg, a, b)
        mask = (1 << width) - 1
        for e in range(1 << ways):
            va, vb = e & mask, (e >> width) & mask
            assert read_word(diff, e) == (va - vb) & mask
            assert borrow.meas(e) == int(va < vb)


class TestMultiply:
    @given(st.integers(min_value=1, max_value=3), st.integers(min_value=1, max_value=3))
    def test_all_pairs_full_width(self, wa, wb):
        ways = wa + wb
        alg = ValueAlgebra(ways, AoB)
        a = [alg.had(i) for i in range(wa)]
        b = [alg.had(wa + i) for i in range(wb)]
        product = library.multiply(alg, a, b)
        assert len(product) == wa + wb
        for e in range(1 << ways):
            va, vb = e & ((1 << wa) - 1), e >> wa
            assert read_word(product, e) == va * vb

    def test_truncated_width(self):
        alg = ValueAlgebra(4, AoB)
        a = [alg.had(i) for i in range(2)]
        b = [alg.had(2 + i) for i in range(2)]
        product = library.multiply(alg, a, b, out_width=2)
        for e in range(16):
            assert read_word(product, e) == ((e & 3) * (e >> 2)) & 3


class TestComparisons:
    @given(st.integers(min_value=1, max_value=4))
    def test_equals(self, width):
        ways = 2 * width
        alg = ValueAlgebra(ways, AoB)
        a = [alg.had(i) for i in range(width)]
        b = [alg.had(width + i) for i in range(width)]
        eq = library.equals(alg, a, b)
        mask = (1 << width) - 1
        for e in range(1 << ways):
            assert eq.meas(e) == int((e & mask) == (e >> width))

    @given(st.integers(min_value=1, max_value=4), st.data())
    def test_equals_const(self, width, data):
        value = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        alg = ValueAlgebra(width, AoB)
        a = [alg.had(i) for i in range(width)]
        eq = library.equals_const(alg, a, value)
        for e in range(1 << width):
            assert eq.meas(e) == int(e == value)

    def test_equals_const_rejects_oversized(self):
        alg = ValueAlgebra(2, AoB)
        with pytest.raises(ValueError):
            library.equals_const(alg, [alg.const(0)] * 2, 4)

    @given(st.integers(min_value=1, max_value=4))
    def test_less_than(self, width):
        ways = 2 * width
        alg = ValueAlgebra(ways, AoB)
        a = [alg.had(i) for i in range(width)]
        b = [alg.had(width + i) for i in range(width)]
        lt = library.less_than(alg, a, b)
        mask = (1 << width) - 1
        for e in range(1 << ways):
            assert lt.meas(e) == int((e & mask) < (e >> width))


class TestMux:
    def test_selects_per_channel(self):
        alg = ValueAlgebra(3, AoB)
        sel = alg.had(2)
        t = [alg.had(0)]
        f = [alg.had(1)]
        out = library.mux(alg, sel, t, f)
        for e in range(8):
            expected = (e >> 0) & 1 if (e >> 2) & 1 else (e >> 1) & 1
            assert out[0].meas(e) == expected

    def test_width_mismatch(self):
        alg = ValueAlgebra(2, AoB)
        with pytest.raises(ValueError):
            library.mux(alg, alg.const(1), [alg.const(0)], [alg.const(0)] * 2)


class TestLogicalOps:
    def test_all_ops(self):
        alg = ValueAlgebra(4, AoB)
        a = [alg.had(0), alg.had(1)]
        b = [alg.had(2), alg.had(3)]
        for op, fn in (("and", lambda x, y: x & y), ("or", lambda x, y: x | y), ("xor", lambda x, y: x ^ y)):
            out = library.logical_ops(alg, a, b, op)
            for e in range(16):
                va, vb = e & 3, e >> 2
                assert read_word(out, e) == fn(va, vb)
