"""Larger Tangled assembly programs: whole-ISA integration workloads."""

import numpy as np
import pytest

from repro.asm import assemble
from repro.bf16 import bf16_from_float, bf16_to_float
from repro.cpu import FunctionalSimulator, PipelinedSimulator

from tests.conftest import assemble_and_run


class TestDotProduct:
    """bfloat16 dot product over memory arrays: loads, FP, loop control."""

    def _program(self, xs, ys):
        n = len(xs)
        data_x = ", ".join(str(bf16_from_float(v)) for v in xs)
        data_y = ", ".join(str(bf16_from_float(v)) for v in ys)
        return f"""
            loadi $1, xvec        ; x pointer
            loadi $2, yvec        ; y pointer
            loadi $3, {n}         ; count
            lex   $0, 0           ; accumulator (bf16 +0.0)
        loop:
            load  $4, $1          ; x[i]
            load  $5, $2          ; y[i]
            mulf  $4, $5
            addf  $0, $4
            lex   $6, 1
            add   $1, $6
            add   $2, $6
            lex   $6, -1
            add   $3, $6
            brt   $3, loop
            lex   $rv, 0
            sys
        xvec:   .word {data_x}
        yvec:   .word {data_y}
        """

    def test_small_dot_product(self):
        xs = [1.5, 2.0, -0.5, 4.0]
        ys = [2.0, 0.25, 8.0, 0.5]
        sim = assemble_and_run(self._program(xs, ys))
        got = bf16_to_float(sim.machine.read_reg(0))
        assert got == pytest.approx(sum(x * y for x, y in zip(xs, ys)), rel=0.05)

    def test_matches_on_pipeline(self):
        xs = [0.5, -1.5, 3.0]
        ys = [4.0, 2.0, 1.0]
        func = assemble_and_run(self._program(xs, ys), simulator="functional")
        pipe = assemble_and_run(self._program(xs, ys), simulator="pipelined")
        assert func.machine.read_reg(0) == pipe.machine.read_reg(0)

    def test_reciprocal_normalization(self):
        """Divide by the first element using recip + mulf."""
        sim = assemble_and_run(
            f"""
            loadi $0, {bf16_from_float(10.0)}
            loadi $1, {bf16_from_float(4.0)}
            copy  $2, $1
            recip $2
            mulf  $0, $2          ; 10 / 4
            """
        )
        assert bf16_to_float(sim.machine.read_reg(0)) == pytest.approx(2.5, rel=0.02)


class TestMemsetAndSum:
    def test_fill_then_sum(self):
        sim = assemble_and_run(
            """
            loadi $1, 0x400       ; base
            lex   $2, 16          ; count
            lex   $0, 5           ; fill value
        fill:
            store $0, $1
            lex   $3, 1
            add   $1, $3
            lex   $3, -1
            add   $2, $3
            brt   $2, fill
            loadi $1, 0x400
            lex   $2, 16
            lex   $4, 0           ; sum
        total:
            load  $3, $1
            add   $4, $3
            lex   $3, 1
            add   $1, $3
            lex   $3, -1
            add   $2, $3
            brt   $2, total
            copy  $0, $4
            """
        )
        assert sim.machine.read_reg(0) == 80


class TestHistogramOfQatChannels:
    def test_population_via_pop_matches_loop(self):
        """pop $d,@a in one instruction vs a next-walk loop: same answer."""
        sim = assemble_and_run(
            """
            had   @0, 1
            had   @1, 3
            and   @2, @0, @1
            lex   $0, 0
            pop   $0, @2          ; count after channel 0
            lex   $1, 0
            meas  $1, @2
            add   $0, $1          ; full population in $0
            ; now the slow way with a next walk into $2
            lex   $2, 0
            lex   $3, 0
            meas  $3, @2
            add   $2, $3
            lex   $3, 0
        walk:
            next  $3, @2
            brf   $3, done
            lex   $4, 1
            add   $2, $4
            br    walk
        done:
            """
        , ways=8)
        assert sim.machine.read_reg(0) == sim.machine.read_reg(2) == 64

    def test_self_modifying_code_on_functional_sim(self):
        """The functional model re-decodes every step, so a program may
        patch itself (the pipelined model would prefetch; see docs)."""
        sim = assemble_and_run(
            """
            loadi $1, patch
            loadi $0, 0x2007      ; encoding of lex $0, 7
            store $0, $1
        patch:
            lex   $0, 99          ; overwritten before execution
            """,
            simulator="functional",
        )
        assert sim.machine.read_reg(0) == 7
