"""Pattern (RE-compressed) substrate tests against dense expansion."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.aob import AoB
from repro.errors import EntanglementError
from repro.pattern import ChunkStore, PatternVector


@pytest.fixture
def store():
    return ChunkStore(6)  # 64-bit chunks keep dense comparison cheap


def random_vector(store, ways, rng):
    a = AoB.random(ways, rng)
    return PatternVector.from_aob(a, store=store), a


class TestChunkStore:
    def test_constants_preinterned(self, store):
        assert store.chunk(store.zero_id) == AoB.zeros(6)
        assert store.chunk(store.one_id) == AoB.ones(6)

    def test_interning_dedupes(self, store):
        a = store.intern(AoB.hadamard(6, 2))
        b = store.intern(AoB.hadamard(6, 2))
        assert a == b

    def test_binop_memoized(self, store):
        h = store.hadamard(1)
        before = store.stats()["binop_cache"]
        r1 = store.binop("xor", h, store.one_id)
        r2 = store.binop("xor", h, store.one_id)
        assert r1 == r2
        assert store.stats()["binop_cache"] == before + 1

    def test_binop_commutative_cache(self, store):
        a, b = store.hadamard(0), store.hadamard(3)
        assert store.binop("and", a, b) == store.binop("and", b, a)

    def test_bnot_involution(self, store):
        h = store.hadamard(2)
        assert store.bnot(store.bnot(h)) == h

    def test_first_one(self, store):
        assert store.first_one(store.zero_id) == -1
        assert store.first_one(store.one_id) == 0
        assert store.first_one(store.hadamard(3)) == 8

    def test_popcount(self, store):
        assert store.popcount(store.zero_id) == 0
        assert store.popcount(store.hadamard(0)) == 32

    def test_rejects_wrong_ways(self, store):
        with pytest.raises(EntanglementError):
            store.intern(AoB.zeros(5))

    def test_rejects_unknown_op(self, store):
        with pytest.raises(ValueError):
            store.binop("nand", store.zero_id, store.one_id)


class TestPatternConstruction:
    def test_zeros_one_run(self, store):
        v = PatternVector.zeros(10, store)
        assert v.num_runs == 1
        assert not v.any()

    def test_ones_one_run(self, store):
        v = PatternVector.ones(10, store)
        assert v.num_runs == 1
        assert v.all()

    def test_hadamard_low_k_one_run(self, store):
        v = PatternVector.hadamard(12, 3, store)
        assert v.num_runs == 1
        assert v.to_aob() == AoB.hadamard(12, 3)

    def test_hadamard_high_k_two_run_alternation(self, store):
        v = PatternVector.hadamard(12, 11, store)
        assert v.num_runs == 2  # zeros then ones: maximal compression
        assert v.to_aob() == AoB.hadamard(12, 11)

    def test_hadamard_compression_independent_of_ways(self, store):
        """The exponential-compression claim of section 1.2."""
        for ways in (8, 12, 16, 20):
            v = PatternVector.hadamard(ways, ways - 1, store)
            assert v.num_runs == 2
            assert v.compression_ratio() == (1 << (ways - 6)) / 2

    def test_from_aob_roundtrip(self, store, rng):
        a = AoB.random(9, rng)
        assert PatternVector.from_aob(a, store=store).to_aob() == a

    def test_from_aob_zero_extension(self, store):
        a = AoB.ones(6)
        v = PatternVector.from_aob(a, ways=8, store=store)
        assert v.popcount() == 64
        assert v.nbits == 256

    def test_rejects_ways_below_chunk(self, store):
        with pytest.raises(EntanglementError):
            PatternVector.zeros(5, store)

    def test_rejects_bad_run_total(self, store):
        with pytest.raises(EntanglementError):
            PatternVector(8, ((store.zero_id, 3),), store)

    def test_rejects_narrow_chunks(self):
        with pytest.raises(EntanglementError):
            PatternVector(8, ((0, 1),), ChunkStore(3))


class TestPatternOps:
    @given(st.data())
    def test_binary_ops_match_dense(self, data):
        import numpy as np

        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        store = ChunkStore(6)
        ways = data.draw(st.integers(min_value=6, max_value=9))
        va, a = random_vector(store, ways, rng)
        vb, b = random_vector(store, ways, rng)
        assert (va & vb).to_aob() == (a & b)
        assert (va | vb).to_aob() == (a | b)
        assert (va ^ vb).to_aob() == (a ^ b)
        assert (~va).to_aob() == ~a

    @given(st.data())
    def test_measurement_matches_dense(self, data):
        import numpy as np

        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        store = ChunkStore(6)
        ways = data.draw(st.integers(min_value=6, max_value=9))
        v, a = random_vector(store, ways, rng)
        assert v.popcount() == a.popcount()
        assert v.any() == a.any()
        assert v.all() == a.all()
        for channel in data.draw(
            st.lists(st.integers(0, (1 << ways) - 1), min_size=1, max_size=8)
        ):
            assert v.meas(channel) == a.meas(channel)
            assert v.next(channel) == a.next(channel)
            assert v.pop_after(channel) == a.pop_after(channel)

    def test_iter_ones_matches_dense(self, store, rng):
        v, a = random_vector(store, 8, rng)
        assert list(v.iter_ones()) == list(a.iter_ones())

    def test_cnot_ccnot_cswap(self, store, rng):
        va, a = random_vector(store, 7, rng)
        vb, b = random_vector(store, 7, rng)
        vc, c = random_vector(store, 7, rng)
        assert va.cnot(vb).to_aob() == a.cnot(b)
        assert va.ccnot(vb, vc).to_aob() == a.ccnot(b, c)
        x, y = va.cswap(vb, vc)
        ax, ay = a.cswap(b, c)
        assert x.to_aob() == ax and y.to_aob() == ay

    def test_ops_preserve_normal_form(self, store):
        """Adjacent equal runs coalesce, so equal values compare equal."""
        h = PatternVector.hadamard(10, 9, store)
        v = (h ^ h) | PatternVector.zeros(10, store)
        assert v == PatternVector.zeros(10, store)
        assert v.num_runs == 1

    def test_mismatched_store_rejected(self, store, rng):
        other = ChunkStore(6)
        va, _ = random_vector(store, 8, rng)
        vb, _ = random_vector(other, 8, rng)
        with pytest.raises(EntanglementError):
            va & vb

    def test_mismatched_ways_rejected(self, store):
        with pytest.raises(EntanglementError):
            PatternVector.zeros(8, store) & PatternVector.zeros(9, store)

    def test_equality_across_stores_is_structural(self):
        s1, s2 = ChunkStore(6), ChunkStore(6)
        assert PatternVector.hadamard(9, 4, s1) == PatternVector.hadamard(9, 4, s2)

    def test_symbolic_sharing(self, store):
        """Gate work scales with runs, not bits: a 2^20-bit op touches
        the store once per distinct chunk pair."""
        h = PatternVector.hadamard(20, 19, store)
        ones = PatternVector.ones(20, store)
        before = store.stats()["binop_cache"]
        result = h ^ ones
        assert result.popcount() == 1 << 19
        assert store.stats()["binop_cache"] - before <= 2

    def test_getitem_and_len(self, store):
        v = PatternVector.hadamard(8, 7, store)
        assert len(v) == 256
        assert v[0] == 0 and v[255] == 1

    def test_repr_shows_runs(self, store):
        assert "runs=" in repr(PatternVector.zeros(8, store))
