"""Superposed-arithmetic demonstration applications."""

import pytest

from repro.apps import multiplication_distribution, superposed_sum
from repro.errors import ReproError


class TestMultiplicationDistribution:
    def test_matches_times_table(self):
        dist = multiplication_distribution(3, 3)
        brute = {}
        for a in range(8):
            for b in range(8):
                brute[a * b] = brute.get(a * b, 0) + 1
        assert dist == brute

    def test_total_mass(self):
        dist = multiplication_distribution(4, 4)
        assert sum(dist.values()) == 256

    def test_asymmetric_widths(self):
        dist = multiplication_distribution(2, 4)
        assert sum(dist.values()) == 64
        assert dist[45] == 1  # 3 * 15 only

    def test_pattern_backend_agrees(self):
        dense = multiplication_distribution(3, 3)
        compressed = multiplication_distribution(3, 3, backend="pattern", chunk_ways=6)
        assert dense == compressed


class TestSuperposedSum:
    def test_is_a_permutation(self):
        dist = superposed_sum(4, 5)
        assert set(dist.values()) == {1}
        assert set(dist) == set(range(16))

    def test_zero_constant(self):
        dist = superposed_sum(3, 0)
        assert set(dist) == set(range(8))

    def test_constant_range_checked(self):
        with pytest.raises(ReproError):
            superposed_sum(3, 8)
