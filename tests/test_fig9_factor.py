"""FIG9 experiment: the word-level prime-factoring algorithm."""

import pytest

from repro.apps import (
    factor_channels,
    factor_pairs,
    factor_word_level,
    figure9_demo,
)
from repro.errors import ReproError


class TestPaperExample:
    def test_figure9_prints_0_1_3_5_15(self):
        """'When the non-destructive measurement of f is made, the values
        0, 1, 3, 5, and 15 are printed.'"""
        assert figure9_demo() == [0, 1, 3, 5, 15]

    def test_pairs_for_15(self):
        result = factor_word_level(15, 4, 4)
        assert result.pairs == [(1, 15), (3, 5), (5, 3), (15, 1)]
        assert result.nontrivial == [3, 5]

    def test_channels_of_the_pairs(self):
        """Channel k encodes (k % 16, k // 16): the factor pairs of 15 sit
        at channels 31, 53, 83 and 241."""
        result = factor_word_level(15, 4, 4)
        channels = sorted(result.e.bits[0].iter_ones())
        assert channels == [31, 53, 83, 241]

    def test_superposition_survives_measurement(self):
        """Section 2.7: everything is still measurable afterwards."""
        result = factor_word_level(15, 4, 4)
        assert result.b.measure() == list(range(16))
        assert result.e.bits[0].popcount() == 4


class TestGeneralFactoring:
    @pytest.mark.parametrize("n,bits,expected", [
        (21, 4, [3, 7]),
        (35, 4, [5, 7]),
        (33, 4, [3, 11]),
        (77, 5, [7, 11]),
        (221, 5, [13, 17]),
    ])
    def test_semiprimes(self, n, bits, expected):
        result = factor_word_level(n, bits, bits)
        assert result.nontrivial == expected

    def test_prime_has_only_trivial_factors(self):
        result = factor_word_level(13, 4, 4)
        assert result.nontrivial == []
        assert result.pairs == [(1, 13), (13, 1)]

    def test_perfect_square(self):
        result = factor_word_level(49, 4, 4)
        assert result.pairs == [(7, 7)]

    def test_number_with_many_factors(self):
        result = factor_word_level(12, 4, 4)
        assert result.pairs == [(1, 12), (2, 6), (3, 4), (4, 3), (6, 2), (12, 1)]

    def test_measured_values_match_paper_structure(self):
        """f = e*b gives 0 plus every b that divides n (including 1, n)."""
        result = factor_word_level(21, 5, 5)
        assert result.measured == [0, 1, 3, 7, 21]

    def test_oversized_n_rejected(self):
        with pytest.raises(ReproError):
            factor_word_level(300, 4, 4)


class TestReadoutVariants:
    def test_factor_channels_matches_word_level(self):
        assert factor_channels(15, 4, 4) == factor_word_level(15, 4, 4).pairs

    def test_factor_pairs_values_where(self):
        assert factor_pairs(15, 4, 4) == [(1, 15), (3, 5), (5, 3), (15, 1)]

    def test_asymmetric_widths(self):
        assert factor_channels(39, 4, 6) == [(1, 39), (3, 13), (13, 3)]


class TestPatternBackend:
    def test_fig9_on_compressed_substrate(self):
        result = factor_word_level(15, 4, 4, backend="pattern", chunk_ways=6)
        assert result.measured == [0, 1, 3, 5, 15]
        assert result.nontrivial == [3, 5]

    def test_beyond_hardware_entanglement(self):
        """S12: factoring with >16-way entanglement via RE chunks --
        1013 * 1019 needs 22-way."""
        result = factor_channels(1013 * 1019, 11, 11, backend="pattern", chunk_ways=12)
        assert (1013, 1019) in result and (1019, 1013) in result
        nontrivial = {p for pair in result for p in pair if p > 1}
        assert nontrivial == {1013, 1019}
