"""Architectural trap model: causes, policies, and handler programs."""

import pytest

from repro.asm import assemble
from repro.cpu import (
    FunctionalSimulator,
    MultiCycleSimulator,
    PipelinedSimulator,
    TrapAction,
    TrapCause,
    TrapPolicy,
)
from repro.errors import HaltedError, SyscallError, TrapError

SIMULATORS = [FunctionalSimulator, MultiCycleSimulator, PipelinedSimulator]
SIM_IDS = ["functional", "multicycle", "pipelined"]

HALT = "lex $rv, 0\nsys\n"

# One program per trap cause: (source, policy kwargs, expected trap PC).
# Expected PCs are None where the faulting PC is timing-dependent.
CAUSE_PROGRAMS = {
    TrapCause.ILLEGAL_OPCODE: (
        "lex $0, 1\n.word 0x6000\n" + HALT,
        {},
        1,
    ),
    TrapCause.UNKNOWN_SYSCALL: (
        "lex $rv, 99\nsys\n" + HALT,
        {},
        1,
    ),
    TrapCause.MEM_FAULT: (
        "lex $1, 0\nlhi $1, 0x90\nload $0, $1\n" + HALT,
        {"mem_fence": 0x8000},
        2,
    ),
    TrapCause.QAT_FAULT: (
        "lex $0, -1\nmeas $0, @0\n" + HALT,
        {"strict_qat": True},
        1,
    ),
    TrapCause.BF16_FAULT: (
        "lex $0, 0\nrecip $0\n" + HALT,
        {"trap_bf16": True},
        1,
    ),
}


def _run(sim_cls, source, policy, budget=10_000):
    sim = sim_cls(ways=6, trap_policy=policy)
    sim.load(assemble(source))
    sim.run(budget)
    return sim


@pytest.mark.parametrize("sim_cls", SIMULATORS, ids=SIM_IDS)
@pytest.mark.parametrize("cause", list(CAUSE_PROGRAMS), ids=lambda c: c.value)
class TestTrapCauses:
    def test_raise_policy_raises_typed_error(self, sim_cls, cause):
        source, knobs, expected_pc = CAUSE_PROGRAMS[cause]
        policy = TrapPolicy(**knobs)
        with pytest.raises(TrapError) as excinfo:
            _run(sim_cls, source, policy)
        assert excinfo.value.record.cause is cause
        assert excinfo.value.pc == expected_pc

    def test_halt_policy_records_and_stops(self, sim_cls, cause):
        source, knobs, expected_pc = CAUSE_PROGRAMS[cause]
        sim = _run(sim_cls, source, TrapPolicy.halting(**knobs))
        assert sim.machine.halted
        assert [t.cause for t in sim.machine.traps] == [cause]
        record = sim.machine.traps[0]
        assert record.pc == expected_pc
        if sim_cls is FunctionalSimulator:
            assert record.cycle is None
        else:
            assert record.cycle is not None


@pytest.mark.parametrize("sim_cls", SIMULATORS, ids=SIM_IDS)
class TestWatchdog:
    RUNAWAY = "lex $0, 1\nloop:\nbrt $0, loop\n"

    def test_raise_policy(self, sim_cls):
        with pytest.raises(TrapError) as excinfo:
            _run(sim_cls, self.RUNAWAY, TrapPolicy(), budget=64)
        assert excinfo.value.record.cause is TrapCause.WATCHDOG

    def test_halt_policy(self, sim_cls):
        sim = _run(sim_cls, self.RUNAWAY, TrapPolicy.halting(), budget=64)
        assert sim.machine.halted
        assert sim.machine.traps[-1].cause is TrapCause.WATCHDOG


@pytest.mark.parametrize("sim_cls", SIMULATORS, ids=SIM_IDS)
class TestHaltedErrorUniform:
    def test_step_after_halt_raises(self, sim_cls):
        sim = sim_cls(ways=6)
        sim.load(assemble(HALT))
        sim.run(1_000)
        assert sim.machine.halted
        with pytest.raises(HaltedError):
            sim.step()


class TestUnknownSyscallContext:
    def test_error_carries_service_and_pc(self):
        sim = FunctionalSimulator(ways=6)
        sim.load(assemble("lex $rv, 42\nsys\n"))
        with pytest.raises(SyscallError) as excinfo:
            sim.run(100)
        assert excinfo.value.service == 42
        assert excinfo.value.pc == 1
        assert excinfo.value.instruction == "sys"


@pytest.mark.parametrize("sim_cls", SIMULATORS, ids=SIM_IDS)
class TestVectoredHandler:
    """A Tangled trap handler catches an illegal opcode and resumes."""

    SOURCE = (
        "lex $0, 1\n"
        ".word 0x6000\n"  # pc=1: unassigned major opcode -> illegal trap
        "lex $1, 2\n"     # pc=2: the resume point the handler returns to
        "lex $rv, 0\n"
        "sys\n"
        "handler:\n"
        "copy $2, $13\n"  # capture the cause code the trap wrote
        "jumpr $14\n"     # resume at the saved EPC
    )

    def test_handler_catches_and_resumes(self, sim_cls):
        program = assemble(self.SOURCE)
        policy = TrapPolicy.vectored(base=program.labels["handler"])
        sim = sim_cls(ways=6, trap_policy=policy)
        sim.load(program)
        sim.run(10_000)
        machine = sim.machine
        assert machine.halted
        # The handler ran: cause code captured, then execution resumed
        # past the illegal word and reached the halt.
        assert machine.read_reg(2) == TrapCause.ILLEGAL_OPCODE.code
        assert machine.read_reg(0) == 1
        assert machine.read_reg(1) == 2
        assert [t.cause for t in machine.traps] == [TrapCause.ILLEGAL_OPCODE]
        assert machine.traps[0].pc == 1

    def test_per_cause_handler_address(self, sim_cls):
        program = assemble(self.SOURCE)
        handler = program.labels["handler"]
        policy = TrapPolicy(
            actions={TrapCause.ILLEGAL_OPCODE: TrapAction.VECTOR},
            handlers={TrapCause.ILLEGAL_OPCODE: handler},
        )
        sim = sim_cls(ways=6, trap_policy=policy)
        sim.load(program)
        sim.run(10_000)
        assert sim.machine.halted
        assert sim.machine.read_reg(2) == TrapCause.ILLEGAL_OPCODE.code


class TestPipelineTrapAccounting:
    def test_vectored_trap_counts_and_squashes(self):
        program = assemble(TestVectoredHandler.SOURCE)
        policy = TrapPolicy.vectored(base=program.labels["handler"])
        sim = PipelinedSimulator(ways=6, trap_policy=policy)
        sim.load(program)
        stats = sim.run(10_000)
        assert stats.traps == 1
        assert sim.machine.read_reg(2) == TrapCause.ILLEGAL_OPCODE.code

    def test_raise_policy_keeps_precise_state(self):
        source = "lex $0, 7\nlex $1, 9\n.word 0x6000\nlex $0, 99\n" + HALT
        sim = PipelinedSimulator(ways=6)
        sim.load(assemble(source))
        with pytest.raises(TrapError) as excinfo:
            sim.run(10_000)
        assert excinfo.value.pc == 2
        # Everything before the faulting instruction retired; nothing
        # after it did.
        assert sim.machine.read_reg(0) == 7
        assert sim.machine.read_reg(1) == 9
