"""Run-ledger tests: schema, queries, views, CLI recording, fan-out.

The suite-wide ``_isolated_ledger`` fixture (conftest) points
``TANGLED_LEDGER`` at a per-test temp path, so ``main()`` calls here
record into a throwaway database.
"""

from __future__ import annotations

import json
import os
import sqlite3

import pytest

from repro.cli import EXIT_REGRESSION, main
from repro.errors import ReproError
from repro.obs import ledger as ledger_mod
from repro.obs.ledger import (
    Ledger,
    compare_view,
    export_json,
    ledger_path,
    open_ledger,
    render_view,
    runs_view,
    scalar_snapshot,
    trajectory_view,
)


def _seed(ledger: Ledger, label: str, counters: dict, **kw) -> str:
    kw.setdefault("config", {"sim": "pipelined"})
    return ledger.record("run", label, counters=counters, **kw)


class TestLedgerCore:
    def test_path_resolution_order(self, tmp_path, monkeypatch):
        monkeypatch.setenv("TANGLED_LEDGER", str(tmp_path / "env.db"))
        assert ledger_path("explicit.db") == "explicit.db"
        assert ledger_path() == str(tmp_path / "env.db")
        monkeypatch.delenv("TANGLED_LEDGER")
        assert ledger_path() == os.path.expanduser("~/.tangled/ledger.db")

    def test_record_and_read_back(self, tmp_path):
        with open_ledger(str(tmp_path / "l.db")) as ledger:
            run_id = _seed(ledger, "fig10.dense", {"pipeline.cycles": 167},
                           wall_seconds=0.5, status=0,
                           traps={"count": 1, "causes": {"watchdog": 1}},
                           rate={"steps": 92, "steps_per_second": 1000},
                           artifacts=["trace.json"])
            (run,) = ledger.runs()
            assert run.id == run_id
            assert run.counters == {"pipeline.cycles": 167}
            assert run.traps["causes"] == {"watchdog": 1}
            assert run.artifacts == ["trace.json"]
            assert run.metrics()["rate.steps_per_second"] == 1000
            assert len(run.id) == 12

    def test_schema_version_stamped_and_checked(self, tmp_path):
        path = str(tmp_path / "l.db")
        open_ledger(path).close()
        conn = sqlite3.connect(path)
        assert conn.execute("PRAGMA user_version").fetchone()[0] == \
            ledger_mod.SCHEMA_VERSION
        conn.execute("PRAGMA user_version = 99")
        conn.commit()
        conn.close()
        with pytest.raises(ReproError, match="unsupported ledger schema"):
            open_ledger(path)

    def test_runs_filter_order_and_last(self, tmp_path):
        with open_ledger(str(tmp_path / "l.db")) as ledger:
            for i in range(5):
                _seed(ledger, "a", {"n": i}, ts=100.0 + i)
            _seed(ledger, "b", {"n": 99}, ts=200.0)
            runs = ledger.runs(label="a", last=3)
            assert [r.counters["n"] for r in runs] == [2, 3, 4]
            assert [r.counters["n"] for r in ledger.runs(last=2)] == [4, 99]
            assert ledger.labels() == [("a", 5), ("b", 1)]

    def test_get_by_prefix_and_ambiguity(self, tmp_path):
        with open_ledger(str(tmp_path / "l.db")) as ledger:
            _seed(ledger, "a", {}, run_id="abc111", ts=1.0)
            _seed(ledger, "a", {}, run_id="abd222", ts=2.0)
            assert ledger.get("abc").id == "abc111"
            with pytest.raises(ReproError, match="ambiguous"):
                ledger.get("ab")
            with pytest.raises(ReproError, match="no recorded run"):
                ledger.get("zz")

    def test_ambiguous_prefix_lists_candidates(self, tmp_path):
        # Regression: the ambiguity error must carry the candidate ids
        # so report --compare / blackbox can show them, and must name
        # them in the message rather than leaving the user to guess.
        with open_ledger(str(tmp_path / "l.db")) as ledger:
            _seed(ledger, "a", {}, run_id="abc111", ts=1.0)
            _seed(ledger, "a", {}, run_id="abd222", ts=2.0)
            with pytest.raises(ledger_mod.AmbiguousRunId) as excinfo:
                ledger.get("ab")
            assert excinfo.value.candidates == ["abc111", "abd222"]
            assert "abc111" in str(excinfo.value)
            assert "abd222" in str(excinfo.value)

    def test_resolve_ambiguous_prefix_does_not_fall_back_to_label(
            self, tmp_path):
        # Regression: resolve() used to swallow the ambiguity into the
        # label fallback and report "matches no recorded run", silently
        # hiding that the prefix matched several runs.
        with open_ledger(str(tmp_path / "l.db")) as ledger:
            _seed(ledger, "a", {}, run_id="abc111", ts=1.0)
            _seed(ledger, "a", {}, run_id="abd222", ts=2.0)
            with pytest.raises(ledger_mod.AmbiguousRunId, match="abd222"):
                ledger.resolve("ab")

    def test_resolve_label_falls_back_to_latest(self, tmp_path):
        with open_ledger(str(tmp_path / "l.db")) as ledger:
            _seed(ledger, "fig10.re", {"n": 1}, ts=1.0)
            newest = _seed(ledger, "fig10.re", {"n": 2}, ts=2.0)
            assert ledger.resolve("fig10.re").id == newest
            with pytest.raises(ReproError, match="matches no recorded"):
                ledger.resolve("nope")


class TestSnapshot:
    def test_scalar_snapshot_splits_progress_and_drops_histograms(self):
        from repro import obs

        telemetry = obs.Telemetry(enabled=True, tracing=False)
        telemetry.counter("cpu.instructions").add(92)
        telemetry.gauge("qat.ways").set(8)
        telemetry.histogram("fault.run_seconds").observe(0.5)
        telemetry.gauge("progress.worker.1.runs").set(4)
        counters, progress = scalar_snapshot(telemetry)
        assert counters == {"cpu.instructions": 92, "qat.ways": 8}
        assert progress == {"progress.worker.1.runs": 4}

    def test_scalar_snapshot_none(self):
        assert scalar_snapshot(None) == ({}, {})


class TestViews:
    def test_trajectory_series_and_deltas(self, tmp_path):
        with open_ledger(str(tmp_path / "l.db")) as ledger:
            _seed(ledger, "fig10.re", {"qat.ops": 100}, ts=1.0)
            _seed(ledger, "fig10.re", {"qat.ops": 80, "new.counter": 1},
                  ts=2.0)
            view = trajectory_view(ledger, "fig10.re")
            assert view["series"]["qat.ops"] == [100, 80]
            assert view["series"]["new.counter"] == [None, 1]
            assert view["deltas"]["qat.ops"] == {
                "first": 100, "last": 80, "pct": -0.2}
            assert "new.counter" not in view["deltas"]
            text = render_view(view)
            assert "qat.ops: 100 -> 80" in text

    def test_trajectory_unknown_label_lists_known(self, tmp_path):
        with open_ledger(str(tmp_path / "l.db")) as ledger:
            _seed(ledger, "fig10.re", {})
            with pytest.raises(ReproError, match="fig10.re"):
                trajectory_view(ledger, "nope")

    def test_compare_classifies_like_bench(self, tmp_path):
        with open_ledger(str(tmp_path / "l.db")) as ledger:
            _seed(ledger, "dense", {"pipeline.cycles": 100, "only.a": 1},
                  rate={"steps_per_second": 1000}, ts=1.0)
            _seed(ledger, "re", {"pipeline.cycles": 200},
                  rate={"steps_per_second": 2000}, ts=2.0)
            view = compare_view(ledger, "dense", "re")
            verdicts = {r["metric"]: r["verdict"] for r in view["rows"]}
            assert verdicts["pipeline.cycles"] == "regressed"
            # Throughput: more steps/sec is an improvement.
            assert verdicts["rate.steps_per_second"] == "improved"
            assert verdicts["only.a"] == "neutral"
            kinds = {r["metric"]: r["kind"] for r in view["rows"]}
            assert kinds["only.a"] == "missing"
            assert kinds["rate.steps_per_second"] == "timing"

    def test_export_json_is_byte_stable(self, tmp_path):
        with open_ledger(str(tmp_path / "l.db")) as ledger:
            _seed(ledger, "a", {"x": 1}, ts=1.0, run_id="aaa")
            _seed(ledger, "a", {"x": 2}, ts=2.0, run_id="bbb")
            first = export_json(runs_view(ledger))
            second = export_json(runs_view(ledger))
            assert first == second
            assert first.endswith("\n")
            json.loads(first)  # well-formed
            traj = [export_json(trajectory_view(ledger, "a"))
                    for _ in range(2)]
            assert traj[0] == traj[1]


class TestCliRecording:
    def _ledger(self):
        return open_ledger(os.environ["TANGLED_LEDGER"])

    def test_fig10_records_row_with_counters(self):
        assert main(["fig10"]) == 0
        with self._ledger() as ledger:
            (run,) = ledger.runs()
            assert run.command == "fig10"
            assert run.label == "fig10.pipelined.dense"
            assert run.counters["cpu.instructions"] == 92
            assert run.counters["pipeline.cycles"] == 167
            assert run.status == 0
            assert run.config["qat_backend"] == "dense"
            assert run.wall_seconds is not None

    def test_no_ledger_opt_out(self):
        assert main(["fig10", "--no-ledger"]) == 0
        with self._ledger() as ledger:
            assert ledger.runs() == []

    def test_unwritable_ledger_warns_but_run_succeeds(self, monkeypatch,
                                                      capsys):
        monkeypatch.setenv("TANGLED_LEDGER", "/dev/null/nope/ledger.db")
        assert main(["fig10"]) == 0
        captured = capsys.readouterr()
        assert "$0 = 5" in captured.out
        assert "ledger" in captured.err

    def test_report_trajectory_across_two_runs(self, capsys):
        assert main(["fig10"]) == 0
        assert main(["fig10"]) == 0
        capsys.readouterr()
        assert main(["report", "--label", "fig10.pipelined.dense"]) == 0
        out = capsys.readouterr().out
        assert "2 run(s)" in out
        assert "cpu.instructions" in out

    def test_report_compare_dense_vs_re_export_stable(self, capsys):
        assert main(["fig10"]) == 0
        assert main(["fig10", "--qat-backend", "re"]) == 0
        capsys.readouterr()
        args = ["report", "--compare", "fig10.pipelined.dense",
                "fig10.pipelined.re", "--export", "json"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first
        view = json.loads(first)
        assert view["a"]["label"] == "fig10.pipelined.dense"
        assert view["b"]["label"] == "fig10.pipelined.re"

    def test_run_records_traps_and_failure_status(self, tmp_path, capsys):
        bad = tmp_path / "trap.s"
        bad.write_text("lex $0, 1\n.word 0x6000\nlex $rv, 0\nsys\n")
        assert main(["run", str(bad)]) == 1
        with self._ledger() as ledger:
            (run,) = ledger.runs(command="run")
            assert run.status == 1
            assert run.traps is not None and run.traps["count"] >= 1
            assert "illegal_opcode" in str(run.traps["causes"]) or \
                run.traps["causes"]

    def test_bench_records_per_bench_rows(self, tmp_path):
        out = tmp_path / "B.json"
        assert main(["bench", "--quick", "--label", "ci",
                     "--only", "fig10.pipelined,fig10.functional_fast",
                     "--out", str(out)]) == 0
        with self._ledger() as ledger:
            labels = dict(ledger.labels())
            assert labels == {"bench.ci": 1, "fig10.pipelined": 1,
                              "fig10.functional_fast": 1}
            (entry,) = ledger.runs(label="fig10.pipelined")
            assert entry.counters["pipeline.cycles"] == 167
            (fast,) = ledger.runs(label="fig10.functional_fast")
            assert fast.rate["steps"] == 92
            (top,) = ledger.runs(label="bench.ci")
            assert str(out) in top.artifacts

    def test_bench_regression_exit_code_recorded(self, tmp_path):
        from repro.obs import bench

        spec = {"schema": bench.SCHEMA, "label": "x", "rounds": 2,
                "warmup": 0, "benches": {"w": {
                    "counters": {"pipeline.cpi": 2.0}, "rate": None,
                    "timing": {"median": 1.0, "mean": 1.0, "min": 1.0,
                               "max": 1.0, "iqr": 0.0, "rounds": 2}}}}
        base = dict(spec, benches={"w": dict(spec["benches"]["w"],
                                             counters={"pipeline.cpi": 1.0})})
        cur_p, base_p = tmp_path / "cur.json", tmp_path / "base.json"
        cur_p.write_text(bench.render_json(spec))
        base_p.write_text(bench.render_json(base))
        assert main(["bench", "--input", str(cur_p),
                     "--compare", str(base_p)]) == EXIT_REGRESSION


class TestFanOutInterplay:
    """Satellite: ledger x reset_default_stores x --jobs sharding."""

    CAMPAIGN = ["faults", "--runs", "6", "--seed", "11", "--jobs", "2",
                "--qat-backend", "re"]

    def test_identical_jobs_campaigns_identical_snapshots(self, capsys):
        from repro.pattern import reset_default_stores

        assert main(self.CAMPAIGN) == 0
        # Dirty the process-global stores between campaigns: the second
        # campaign resets them, so its ledger snapshot must not shift.
        reset_default_stores()
        assert main(self.CAMPAIGN) == 0
        reports = capsys.readouterr().out
        half = len(reports) // 2
        assert reports[:half] == reports[half:]
        with open_ledger(os.environ["TANGLED_LEDGER"]) as ledger:
            one, two = ledger.runs(command="faults")
            assert one.counters == two.counters
            assert one.counters["faults.masked"] + \
                one.counters["faults.detected"] + \
                one.counters["faults.silent"] == 6
            # Worker gauges live beside (not inside) the snapshot.
            assert not any(k.startswith("progress.") for k in one.counters)
            assert one.workers["done"] == 6
            # Worker ids are pool-assigned (a process-global counter),
            # so only their presence and shape are stable.
            assert 1 <= len(one.workers["workers"]) <= 2
            assert all(wid.isdigit() for wid in one.workers["workers"])
            for gauges in one.workers["workers"].values():
                assert set(gauges) == {"items", "busy_seconds", "steps",
                                       "steps_per_second", "straggler"}

    def test_jobs_report_bytes_match_serial_with_progress(self, capsys):
        serial = ["faults", "--runs", "5", "--seed", "3", "--summary-only"]
        assert main(serial) == 0
        first = capsys.readouterr().out
        assert main(serial[:-1] + ["--jobs", "2", "--summary-only"]) == 0
        captured = capsys.readouterr()
        assert captured.out == first
        # The fan-out run narrates progress on stderr...
        assert "progress:" in captured.err
        # ...and none of it leaks into the merged report.
        assert "progress" not in captured.out


class TestConcurrencyHardening:
    def test_connections_use_wal_and_busy_timeout(self, tmp_path):
        conn = ledger_mod._connect(str(tmp_path / "ledger.db"))
        try:
            assert conn.execute("PRAGMA busy_timeout").fetchone()[0] == 5000
            mode = conn.execute("PRAGMA journal_mode").fetchone()[0]
            assert mode.lower() == "wal"
        finally:
            conn.close()

    def test_locked_retry_survives_transient_locks(self):
        import sqlite3

        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise sqlite3.OperationalError("database is locked")
            return "ok"

        assert ledger_mod._locked_retry(flaky, delay=0.001) == "ok"
        assert len(calls) == 3

    def test_locked_retry_propagates_other_errors(self):
        import sqlite3

        def broken():
            raise sqlite3.OperationalError("no such table: nope")

        with pytest.raises(sqlite3.OperationalError, match="no such table"):
            ledger_mod._locked_retry(broken, delay=0.001)

    def test_v1_database_migrates_in_place(self, tmp_path):
        import sqlite3

        path = str(tmp_path / "v1.db")
        conn = sqlite3.connect(path)
        conn.executescript(
            "CREATE TABLE runs (id TEXT PRIMARY KEY, ts REAL NOT NULL, "
            "command TEXT NOT NULL, label TEXT NOT NULL, version TEXT "
            "NOT NULL, config TEXT NOT NULL, wall_seconds REAL, status "
            "INTEGER NOT NULL, traps TEXT, counters TEXT NOT NULL, rate "
            "TEXT, workers TEXT, artifacts TEXT NOT NULL); "
            "PRAGMA user_version = 1;"
        )
        conn.commit()
        conn.close()
        with ledger_mod.open_ledger(path) as ledger:
            ledger.record("run", "migrated", {}, {})
        conn = sqlite3.connect(path)
        assert conn.execute("PRAGMA user_version").fetchone()[0] == \
            ledger_mod.SCHEMA_VERSION
        assert conn.execute(
            "SELECT COUNT(*) FROM sqlite_master WHERE name = 'shards'"
        ).fetchone()[0] == 1
        conn.close()


class TestShardJournal:
    def test_roundtrip_returns_done_payloads_only(self, tmp_path):
        path = str(tmp_path / "ledger.db")
        journal = ledger_mod.ShardJournal("jrnl", path=path)
        assert journal.begin("faults", {"seed": 7}) == {}
        journal.record(0, ledger_mod.SHARD_DONE, 1, {"run": 0, "x": 1})
        journal.record(1, ledger_mod.SHARD_TOXIC, 3, {"run": 1})
        resumed = ledger_mod.ShardJournal("jrnl", path=path, resume=True)
        done = resumed.begin("faults", {"seed": 7})
        assert done == {0: {"run": 0, "x": 1}}

    def test_resume_missing_run_raises(self, tmp_path):
        from repro.errors import SupervisorError

        path = str(tmp_path / "ledger.db")
        ledger_mod.ShardJournal("exists", path=path).begin("faults", {})
        with pytest.raises(SupervisorError, match="nothing to resume"):
            ledger_mod.ShardJournal("absent", path=path, resume=True)

    def test_resume_fingerprint_mismatch_names_drifted_keys(self,
                                                            tmp_path):
        from repro.errors import SupervisorError

        path = str(tmp_path / "ledger.db")
        journal = ledger_mod.ShardJournal("jrnl", path=path)
        journal.begin("faults", {"seed": 7, "runs": 4})
        resumed = ledger_mod.ShardJournal("jrnl", path=path, resume=True)
        with pytest.raises(SupervisorError, match="seed"):
            resumed.begin("faults", {"seed": 8, "runs": 4})

    def test_record_replaces_prior_row(self, tmp_path):
        path = str(tmp_path / "ledger.db")
        journal = ledger_mod.ShardJournal("jrnl", path=path)
        journal.begin("faults", {})
        journal.record(0, ledger_mod.SHARD_TOXIC, 3, {"run": 0})
        journal.record(0, ledger_mod.SHARD_DONE, 1, {"run": 0, "ok": 1})
        resumed = ledger_mod.ShardJournal("jrnl", path=path, resume=True)
        assert resumed.begin("faults", {}) == {0: {"run": 0, "ok": 1}}

    def test_write_failure_disables_journal_not_run(self, tmp_path,
                                                    monkeypatch, capsys):
        import sqlite3

        path = str(tmp_path / "ledger.db")
        journal = ledger_mod.ShardJournal("jrnl", path=path)

        def exploding(_path):
            raise sqlite3.OperationalError("disk I/O error")

        monkeypatch.setattr(ledger_mod, "_connect", exploding)
        journal.record(0, ledger_mod.SHARD_DONE, 1, {})
        assert journal.enabled is False
        assert "resume disabled" in capsys.readouterr().err
        journal.record(1, ledger_mod.SHARD_DONE, 1, {})  # silent no-op

    def test_resolve_journal_run_prefix_and_errors(self, tmp_path):
        path = str(tmp_path / "ledger.db")
        ledger_mod.ShardJournal("abc123", path=path).begin("faults", {})
        ledger_mod.ShardJournal("abd999", path=path).begin("faults", {})
        assert ledger_mod.resolve_journal_run("abc", path=path) == "abc123"
        assert ledger_mod.resolve_journal_run("abc123", path=path) == \
            "abc123"
        with pytest.raises(ledger_mod.AmbiguousRunId) as excinfo:
            ledger_mod.resolve_journal_run("ab", path=path)
        assert sorted(excinfo.value.candidates) == ["abc123", "abd999"]
        with pytest.raises(ReproError, match="no journaled run"):
            ledger_mod.resolve_journal_run("zzz", path=path)

    def test_resolve_journal_run_without_ledger_file(self, tmp_path):
        with pytest.raises(ReproError, match="nothing to resume"):
            ledger_mod.resolve_journal_run(
                "abc", path=str(tmp_path / "missing.db")
            )
