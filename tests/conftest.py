"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings

# Keep hypothesis fast and deterministic in CI-style runs.
settings.register_profile("repro", max_examples=50, deadline=None)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture(autouse=True)
def _isolated_ledger(tmp_path, monkeypatch):
    """Point the run ledger at a per-test path.

    CLI tests call ``main()`` in-process; without this they would write
    real rows into the developer's ``~/.tangled/ledger.db``.
    """
    monkeypatch.setenv("TANGLED_LEDGER", str(tmp_path / "ledger.db"))


@pytest.fixture(autouse=True)
def _isolated_chunk_cache(monkeypatch):
    """Keep the persistent chunk cache off (and clean) per test.

    A developer's ``TANGLED_CHUNK_CACHE`` must not warm (or be polluted
    by) suite runs, and cache-enabling tests must not leak module state
    into their neighbours.
    """
    from repro.pattern import persist

    monkeypatch.delenv("TANGLED_CHUNK_CACHE", raising=False)
    persist.reset()
    persist.reset_counters()
    yield
    persist.reset()
    persist.reset_counters()


def assemble_and_run(source: str, ways: int = 8, simulator: str = "functional"):
    """Assemble source (auto-appending a halting sys) and run it."""
    from repro.asm import assemble
    from repro.cpu import FunctionalSimulator, MultiCycleSimulator, PipelinedSimulator

    if "sys" not in source:
        source = source + "\n\tlex\t$rv,0\n\tsys\n"
    program = assemble(source)
    if simulator == "functional":
        sim = FunctionalSimulator(ways=ways)
    elif simulator == "multicycle":
        sim = MultiCycleSimulator(ways=ways)
    else:
        sim = PipelinedSimulator(ways=ways)
    sim.load(program)
    sim.run()
    return sim
