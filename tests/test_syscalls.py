"""System-call convention tests."""

import pytest

from repro.cpu import FunctionalSimulator, PipelinedSimulator, SyscallHandler
from repro.asm import assemble
from repro.errors import SyscallError
from repro.faults import TrapCause, TrapPolicy

from tests.conftest import assemble_and_run


class TestServices:
    def test_halt(self):
        sim = assemble_and_run("lex $rv, 0\nsys\n")
        assert sim.machine.halted

    def test_unknown_service_raises_typed_error(self):
        with pytest.raises(SyscallError) as excinfo:
            assemble_and_run("lex $rv, 99\nsys\n")
        assert excinfo.value.service == 99
        assert excinfo.value.pc == 1

    def test_unknown_service_halts_under_halt_policy(self):
        sim = FunctionalSimulator(trap_policy=TrapPolicy.halting())
        sim.load(assemble("lex $rv, 99\nsys\n"))
        sim.run()
        assert sim.machine.halted
        assert [t.cause for t in sim.machine.traps] == [TrapCause.UNKNOWN_SYSCALL]

    def test_print_int_signed(self):
        sim = assemble_and_run(
            "lex $0, -42\nlex $rv, 1\nsys\nlex $rv, 0\nsys\n"
        )
        assert sim.machine.output == ["-42"]

    def test_print_char(self):
        sim = assemble_and_run(
            "lex $0, 65\nlex $rv, 2\nsys\nlex $rv, 0\nsys\n"
        )
        assert sim.machine.output == ["A"]

    def test_read_cycles_on_pipeline(self):
        """Service 3 exposes the cycle counter on simulators that have one."""
        sim = PipelinedSimulator(ways=6)
        sim.load(assemble(
            "lex $rv, 3\nsys\ncopy $1, $0\nlex $rv, 0\nsys\n"
        ))
        sim.run()
        assert 0 < sim.machine.read_reg(1) <= sim.stats.cycles

    def test_read_cycles_without_source_returns_zero(self):
        """The functional simulator has no clock: service 3 reads as zero
        and execution continues."""
        sim = assemble_and_run("lex $rv, 3\nsys\nlex $1, 7\nlex $rv, 0\nsys\n")
        assert sim.machine.halted
        assert sim.machine.read_reg(0) == 0
        assert sim.machine.read_reg(1) == 7


class TestPrintString:
    def test_hello_world(self):
        sim = assemble_and_run(
            """
            loadi $0, message
            lex   $rv, 4
            sys
            lex   $rv, 0
            sys
        message:
            .string "hello, tangled"
            """
        )
        assert sim.machine.output == ["hello, tangled"]

    def test_escapes(self):
        sim = assemble_and_run(
            'loadi $0, msg\nlex $rv, 4\nsys\nlex $rv, 0\nsys\n'
            'msg: .string "a\\nb"\n'
        )
        assert sim.machine.output == ["a\nb"]

    def test_empty_string(self):
        sim = assemble_and_run(
            'loadi $0, msg\nlex $rv, 4\nsys\nlex $rv, 0\nsys\nmsg: .string ""\n'
        )
        assert sim.machine.output == [""]

    def test_unquoted_rejected(self):
        from repro.asm import assemble
        from repro.errors import AssemblerError

        with pytest.raises(AssemblerError):
            assemble(".string hello\n")

    def test_runaway_unterminated_string_is_bounded(self):
        """A missing terminator cannot hang the machine."""
        from repro.asm import assemble
        from repro.cpu import FunctionalSimulator

        sim = FunctionalSimulator(ways=6)
        sim.machine.mem[:] = 65  # 'A' everywhere, no terminator
        program = assemble("lex $0, 0\nlex $rv, 4\nsys\nlex $rv, 0\nsys\n")
        # overlay the program at 0 (overwrites some 'A's -- fine)
        sim.load(program)
        sim.run()
        assert len(sim.machine.output[0]) <= 4096


class TestCustomHandlers:
    def test_registered_service(self):
        handler = SyscallHandler()
        handler.register(7, lambda m: m.write_reg(5, 1234))
        sim = FunctionalSimulator(ways=6, syscalls=handler)
        sim.load(assemble("lex $rv, 7\nsys\nlex $rv, 0\nsys\n"))
        sim.run()
        assert sim.machine.read_reg(5) == 1234

    def test_custom_overrides_builtin(self):
        handler = SyscallHandler()
        handler.register(1, lambda m: m.output.append("custom"))
        sim = FunctionalSimulator(ways=6, syscalls=handler)
        sim.load(assemble("lex $rv, 1\nsys\nlex $rv, 0\nsys\n"))
        sim.run()
        assert sim.machine.output == ["custom"]
