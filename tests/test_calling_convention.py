"""Call/stack macros: the function-call register convention in action.

The paper reserves $rv/$ra/$fp/$sp "for function/subroutine call
handling" but defines no call instruction; these tests exercise our
call/ret/push/pop macro layer built on that convention.
"""

import pytest

from repro.asm.macros import expand_macro
from repro.errors import AssemblerError
from repro.isa.registers import AT, RA, SP

from tests.conftest import assemble_and_run


class TestExpansions:
    def test_call_builds_return_address(self):
        seq = expand_macro("call", (100,))
        assert [p.mnemonic for p in seq] == ["lex", "lhi", "lex", "lhi", "jumpr"]
        assert seq[0].ops[0] == RA and seq[1].ops[0] == RA

    def test_ret_is_jumpr_ra(self):
        seq = expand_macro("ret", ())
        assert [p.mnemonic for p in seq] == ["jumpr"]
        assert seq[0].ops == (RA,)

    def test_push_pop_use_stack_pointer(self):
        push = expand_macro("push", (3,))
        pop = expand_macro("pop", (3,))
        assert [p.mnemonic for p in push] == ["lex", "add", "store"]
        assert [p.mnemonic for p in pop] == ["load", "lex", "add"]
        assert push[2].ops == (3, SP)

    def test_at_cannot_be_pushed(self):
        with pytest.raises(AssemblerError):
            expand_macro("push", (AT,))
        with pytest.raises(AssemblerError):
            expand_macro("pop", (AT,))

    def test_ret_rejects_operands(self):
        with pytest.raises(AssemblerError):
            expand_macro("ret", (1,))


class TestBehaviour:
    def test_call_and_return(self):
        sim = assemble_and_run(
            """
            loadi $sp, 0x8000
            call  fn
            lex   $1, 7        ; executes after the return
            lex   $rv, 0
            sys
        fn: lex   $0, 42
            ret
            """
        )
        assert sim.machine.read_reg(0) == 42
        assert sim.machine.read_reg(1) == 7

    def test_push_pop_roundtrip(self):
        sim = assemble_and_run(
            """
            loadi $sp, 0x8000
            lex   $0, 11
            lex   $1, 22
            push  $0
            push  $1
            lex   $0, 0
            lex   $1, 0
            pop   $1
            pop   $0
            """
        )
        assert sim.machine.read_reg(0) == 11
        assert sim.machine.read_reg(1) == 22
        assert sim.machine.read_reg(SP) == 0x8000  # balanced

    def test_nested_calls_via_stack(self):
        """Two-deep call chain saving $ra on the stack."""
        sim = assemble_and_run(
            """
            loadi $sp, 0x8000
            call  outer
            lex   $rv, 0
            sys
        outer:
            push  $ra
            call  inner
            pop   $ra
            lex   $2, 2
            add   $0, $2
            ret
        inner:
            lex   $0, 40
            ret
            """
        )
        assert sim.machine.read_reg(0) == 42

    def test_recursive_factorial(self):
        """factorial(6) = 720 with a real recursive call stack."""
        sim = assemble_and_run(
            """
            loadi $sp, 0x8000
            lex   $0, 6          ; argument
            call  fact
            copy  $0, $rv
            lex   $rv, 1
            sys                   ; print 720
            lex   $rv, 0
            sys
        fact:
            brt   $0, recurse
            lex   $rv, 1          ; fact(0) = 1
            ret
        recurse:
            push  $ra
            push  $0
            lex   $1, -1
            add   $0, $1          ; n - 1
            call  fact
            pop   $0              ; restore n
            pop   $ra
            mul   $rv, $0         ; fact(n-1) * n  (mul keeps $rv as dest)
            ret
            """
        )
        assert sim.machine.output == ["720"]

    def test_recursion_on_the_pipeline(self):
        """Same program, cycle-stepped pipeline: state must agree."""
        src = """
            loadi $sp, 0x8000
            lex   $0, 5
            call  fact
            copy  $0, $rv
            lex   $rv, 0
            sys
        fact:
            brt   $0, recurse
            lex   $rv, 1
            ret
        recurse:
            push  $ra
            push  $0
            lex   $1, -1
            add   $0, $1
            call  fact
            pop   $0
            pop   $ra
            mul   $rv, $0
            ret
        """
        functional = assemble_and_run(src, simulator="functional")
        pipelined = assemble_and_run(src, simulator="pipelined")
        assert functional.machine.read_reg(0) == 120
        assert pipelined.machine.read_reg(0) == 120
