"""Pluggable Qat register substrates: dense vs RE-compressed.

Covers the backend abstraction itself (selection, bounds, snapshots,
fault flips), the qpop measurement-width regression, per-run chunkstore
isolation, and the randomized dense<->RE differential suite asserting
the two substrates are architecturally indistinguishable -- including
on the paper's Figure 10 listing.
"""

import random

import numpy as np
import pytest

from repro.asm import assemble
from repro.cpu import (
    BACKENDS,
    MAX_RE_WAYS,
    DenseQatBackend,
    FunctionalSimulator,
    MachineState,
    MultiCycleSimulator,
    PipelinedSimulator,
    REQatBackend,
    TrapPolicy,
    make_qat_backend,
)
from repro.errors import CheckpointError, SimulatorError, TrapError


def _halted_run(source, ways=8, qat_backend="dense", sim_cls=FunctionalSimulator,
                trap_policy=None):
    sim = sim_cls(ways=ways, qat_backend=qat_backend, trap_policy=trap_policy)
    sim.load(assemble(source))
    sim.run()
    return sim


class TestSelection:
    def test_backend_names(self):
        assert BACKENDS == ("dense", "re")

    def test_factory_builds_both(self):
        assert make_qat_backend("dense", 8).name == "dense"
        assert make_qat_backend("re", 8).name == "re"

    def test_factory_rejects_unknown(self):
        with pytest.raises(SimulatorError, match="unknown Qat backend"):
            make_qat_backend("sparse", 8)

    def test_factory_accepts_instance(self):
        backend = REQatBackend(8)
        assert make_qat_backend(backend, 8) is backend
        with pytest.raises(SimulatorError, match="8-way"):
            make_qat_backend(backend, 10)

    def test_dense_bound_is_max_dense_ways(self):
        # Regression: MachineState hardcoded ways <= 20 while the AoB
        # layer advertised MAX_DENSE_WAYS = 26.  21-way must now build.
        machine = MachineState(ways=21)
        assert machine.nbits == 1 << 21

    def test_dense_overflow_names_re_backend(self):
        with pytest.raises(SimulatorError, match="'re' backend"):
            MachineState(ways=27)

    def test_re_bounds(self):
        with pytest.raises(SimulatorError):
            REQatBackend(5)
        with pytest.raises(SimulatorError):
            REQatBackend(MAX_RE_WAYS + 1)

    def test_qregs_matrix_is_dense_only(self):
        machine = MachineState(ways=8, qat_backend="re")
        with pytest.raises(SimulatorError, match="no dense register matrix"):
            machine.qregs


class TestQpopSaturation:
    """The measurement-width bug: pop's 16-bit destination.

    A 17-way all-ones register has 65,536 ones after channel 65,535 --
    exactly 0x10000, which the old ``& 0xFFFF`` truncation silently
    wrapped to 0.  The count must saturate to 0xFFFF instead, and trap
    under ``strict_qat``.
    """

    SOURCE = "one\t@5\nlex\t$0,-1\npop\t$0,@5\nlex\t$rv,0\nsys\n"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_saturates_at_wraparound_boundary(self, backend):
        sim = _halted_run(self.SOURCE, ways=17, qat_backend=backend)
        assert sim.machine.read_reg(0) == 0xFFFF

    def test_strict_qat_traps_on_overflow(self):
        with pytest.raises(TrapError, match="exceeding the 16-bit"):
            _halted_run(self.SOURCE, ways=17,
                        trap_policy=TrapPolicy(strict_qat=True))

    def test_in_range_count_unchanged(self):
        # Exactly at the boundary from below: a 16-way all-ones register
        # has 65,535 ones after channel 0 -- fits exactly, no trap.
        source = "one\t@5\nlex\t$0,0\npop\t$0,@5\nlex\t$rv,0\nsys\n"
        sim = _halted_run(source, ways=16,
                          trap_policy=TrapPolicy(strict_qat=True))
        assert sim.machine.read_reg(0) == 0xFFFF


class TestStoreIsolation:
    def test_reset_default_stores(self):
        from repro.pattern import default_store, reset_default_stores

        before = default_store(8)
        assert default_store(8) is before
        reset_default_stores()
        assert default_store(8) is not before

    def test_re_backends_never_share_stores(self):
        a, b = REQatBackend(8), REQatBackend(8)
        assert a.store is not b.store
        from repro.pattern import default_store

        assert a.store is not default_store(8)


_QAT_SOURCES = {
    "had_and_next": (
        "had\t@1,0\nhad\t@2,1\nand\t@3,@1,@2\nlex\t$0,0\n"
        "next\t$0,@3\nlex\t$rv,0\nsys\n"
    ),
    "xor_not_meas": (
        "had\t@1,2\none\t@2\nxor\t@3,@1,@2\nnot\t@3\nlex\t$0,5\n"
        "meas\t$0,@3\nlex\t$rv,0\nsys\n"
    ),
    "cnot_swap_pop": (
        "had\t@1,0\nhad\t@2,3\ncnot\t@1,@2\nswap\t@1,@2\nlex\t$0,1\n"
        "pop\t$0,@1\nlex\t$rv,0\nsys\n"
    ),
    "ccnot_cswap": (
        "had\t@1,0\nhad\t@2,1\nhad\t@3,2\nccnot\t@1,@2,@3\n"
        "cswap\t@2,@3,@1\nzero\t@4\nor\t@4,@2,@3\nlex\t$0,0\n"
        "next\t$0,@4\nlex\t$rv,0\nsys\n"
    ),
}


class TestDifferential:
    """Dense and RE must be architecturally indistinguishable."""

    @pytest.mark.parametrize("name", sorted(_QAT_SOURCES))
    def test_fixed_programs_agree(self, name):
        source = _QAT_SOURCES[name]
        results = {}
        for backend in BACKENDS:
            sim = _halted_run(source, ways=8, qat_backend=backend)
            results[backend] = (
                tuple(int(r) for r in sim.machine.regs),
                tuple(sim.machine.output),
                [(t.cause, t.pc) for t in sim.machine.traps],
            )
        assert results["dense"] == results["re"]

    @pytest.mark.parametrize("sim_cls",
                             [FunctionalSimulator, MultiCycleSimulator,
                              PipelinedSimulator])
    def test_fig10_agrees_across_simulators(self, sim_cls):
        from repro.apps import fig10_program

        program = fig10_program()
        snaps = []
        for backend in BACKENDS:
            sim = sim_cls(ways=8, qat_backend=backend)
            sim.load(program)
            sim.run()
            machine = sim.machine
            snaps.append((
                tuple(int(r) for r in machine.regs),
                machine.mem.tobytes(),
                tuple(machine.output),
                machine.instret,
                [machine.read_qreg(q).words.tobytes() for q in range(16)],
            ))
        assert snaps[0] == snaps[1]
        assert snaps[0][0][:2] == (5, 3)

    def test_randomized_gate_streams_agree(self):
        rng = random.Random(20260806)
        gate_ops = ("qand", "qor", "qxor", "qnot", "qzero", "qone",
                    "qhad", "qccnot", "qcnot", "qcswap", "qswap")
        for trial in range(12):
            ways = rng.choice((6, 7, 8))
            dense = MachineState(ways=ways, qat_backend="dense")
            comp = MachineState(ways=ways, qat_backend="re")
            for machine in (dense, comp):
                machine.qat.had(1, 0)
                machine.qat.had(2, 1)
                machine.qat.had(3, 2)
            for _ in range(40):
                op = rng.choice(gate_ops)
                regs = [rng.randrange(8) for _ in range(3)]
                k = rng.randrange(ways)
                for machine in (dense, comp):
                    qat = machine.qat
                    if op in ("qand", "qor", "qxor"):
                        qat.binary(op[1:], *regs)
                    elif op == "qnot":
                        qat.invert(regs[0])
                    elif op == "qzero":
                        qat.zero(regs[0])
                    elif op == "qone":
                        qat.one(regs[0])
                    elif op == "qhad":
                        qat.had(regs[0], k)
                    elif op == "qccnot":
                        qat.ccnot(*regs)
                    elif op == "qcnot":
                        qat.cnot(regs[0], regs[1])
                    elif op == "qcswap":
                        qat.cswap(*regs)
                    else:
                        qat.swap(regs[0], regs[1])
                # rng.randrange consumed identically for both machines
                channel = rng.randrange(1 << ways)
                reg = rng.randrange(8)
                assert dense.qat.meas(reg, channel) == comp.qat.meas(reg, channel)
                assert dense.qat.next(reg, channel) == comp.qat.next(reg, channel)
                assert (dense.qat.pop_after(reg, channel)
                        == comp.qat.pop_after(reg, channel))
            for q in range(8):
                assert (dense.read_qreg(q).words.tobytes()
                        == comp.read_qreg(q).words.tobytes()), (trial, q)


class TestFaultSurfaces:
    def test_flip_bit_agrees_with_dense(self):
        dense = MachineState(ways=8, qat_backend="dense")
        comp = MachineState(ways=8, qat_backend="re")
        for machine in (dense, comp):
            machine.qat.had(1, 2)
            machine.flip_qreg_bit(1, 2, 17)
            machine.flip_qreg_bit(1, 0, 0)
        assert (dense.read_qreg(1).words.tobytes()
                == comp.read_qreg(1).words.tobytes())

    def test_flip_never_corrupts_shared_chunks(self):
        # @1 and @2 share every interned chunk (same hadamard); a flip
        # against @1 must leave @2's value byte-identical.
        machine = MachineState(ways=10, qat_backend="re")
        machine.qat.had(1, 3)
        machine.qat.had(2, 3)
        before = machine.read_qreg(2).words.tobytes()
        machine.flip_qreg_bit(1, 4, 33)
        assert machine.read_qreg(2).words.tobytes() == before
        flipped = machine.read_qreg(1)
        channel = (4 << 6) | 33
        reference = DenseQatBackend(10)
        reference.had(1, 3)
        reference.flip_bit(1, 4, 33)
        assert flipped.words.tobytes() == reference.read(1).words.tobytes()
        assert flipped.meas(channel) != machine.read_qreg(2).meas(channel)

    def test_injected_event_routes_through_backend(self):
        from repro.faults.inject import FaultEvent, apply_event

        machine = MachineState(ways=8, qat_backend="re")
        machine.qat.one(7)
        apply_event(machine, FaultEvent(step=0, target="qreg", index=7,
                                        word=1, bit=9))
        assert machine.qat.meas(7, (1 << 6) | 9) == 0


class TestCheckpoint:
    def _partial_fig10(self, backend):
        from repro.apps import fig10_program

        sim = FunctionalSimulator(ways=8, qat_backend=backend)
        sim.load(fig10_program())
        for _ in range(40):
            sim.step()
        return sim

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_roundtrip_resumes_to_same_result(self, backend, tmp_path):
        from repro.faults.checkpoint import Checkpoint

        sim = self._partial_fig10(backend)
        checkpoint = Checkpoint.take(sim.machine)
        assert checkpoint.qat_backend == backend
        assert checkpoint.verify()
        sim.run()
        reference = (sim.machine.read_reg(0), sim.machine.read_reg(1))

        path = tmp_path / "cp.npz"
        checkpoint.save(str(path))
        loaded = Checkpoint.load(str(path))
        assert loaded.verify()
        resumed = FunctionalSimulator(ways=8, qat_backend=backend)
        loaded.restore(resumed.machine)
        resumed.run()
        assert (resumed.machine.read_reg(0),
                resumed.machine.read_reg(1)) == reference == (5, 3)

    def test_backend_mismatch_refused(self):
        from repro.faults.checkpoint import Checkpoint

        checkpoint = Checkpoint.take(self._partial_fig10("re").machine)
        dense = FunctionalSimulator(ways=8, qat_backend="dense")
        with pytest.raises(CheckpointError, match="'re' Qat backend"):
            checkpoint.restore(dense.machine)

    def test_re_corruption_detected(self):
        from dataclasses import replace

        from repro.faults.checkpoint import Checkpoint

        checkpoint = Checkpoint.take(self._partial_fig10("re").machine)
        runs = list(checkpoint.qat_runs)
        first = next(i for i, r in enumerate(runs) if r)
        (sym, count), *rest = runs[first]
        runs[first] = tuple([(sym, count + 1)] + rest)
        corrupted = replace(checkpoint, qat_runs=tuple(runs))
        assert not corrupted.verify()
        target = FunctionalSimulator(ways=8, qat_backend="re")
        with pytest.raises(CheckpointError, match="integrity"):
            corrupted.restore(target.machine)


class TestWideWays:
    def test_fig10_at_24_way_in_bounded_memory(self):
        # The dense register file would need 256 * 2^24 bits = 512 MiB;
        # the RE backend runs it in O(runs) and still factors 15.
        from repro.apps import fig10_program, run_factor_program

        sim, regs = run_factor_program(fig10_program(), ways=24,
                                       simulator="functional",
                                       qat_backend="re")
        assert regs == (5, 3)
        stats = sim.machine.qat.stats()
        assert stats["backend"] == "re"
        assert stats["total_runs"] < 100_000

    def test_constants_cost_o_runs_at_max_ways(self):
        backend = REQatBackend(MAX_RE_WAYS)
        backend.one(0)
        backend.had(1, MAX_RE_WAYS - 1)
        backend.binary("xor", 2, 0, 1)
        assert backend.vector(2).num_runs <= 4
        # ones ^ had(31): the bottom 2^31 channels are all ones, so the
        # raw (pre-saturation) count after channel 0 spans 31 bits.
        assert backend.pop_after(2, 0) == (1 << 31) - 1
        assert backend.pop_after(2, 1 << 31) == 0


class TestCampaignAndBench:
    def test_campaign_report_carries_backend(self):
        from repro.faults.campaign import run_campaign

        report = run_campaign(runs=4, seed=11, qat_backend="re")
        assert report["qat_backend"] == "re"
        assert sum(report["summary"][k]
                   for k in ("detected", "masked", "silent")) == 4

    def test_bench_suite_includes_re_specs(self):
        from repro.obs.bench import default_specs, spec_by_name

        names = [spec.name for spec in default_specs()]
        assert "fig10.re" in names
        assert "fig10.re_ways24" in names
        spec_by_name("fig10.re").fn()
