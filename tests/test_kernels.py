"""Raw kernel tests: invariants the CPU register file relies on."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.aob import AoB, kernels
from repro.utils.bits import top_mask, words_for_bits


def random_words(rng, ways):
    nbits = 1 << ways
    words = rng.integers(0, 1 << 63, words_for_bits(nbits)).astype(np.uint64)
    words[-1] &= top_mask(nbits)
    return words


class TestTopBitInvariant:
    """Every kernel must keep bits above nbits zero."""

    @pytest.mark.parametrize("ways", [0, 1, 3, 5, 6, 7])
    def test_not_masks_top(self, ways, rng):
        nbits = 1 << ways
        a = random_words(rng, ways)
        out = np.empty_like(a)
        kernels.k_not(a, out, nbits)
        assert (out[-1] & ~top_mask(nbits)) == 0

    @pytest.mark.parametrize("ways", [0, 1, 3, 5, 6, 7])
    def test_one_masks_top(self, ways):
        nbits = 1 << ways
        out = np.empty(words_for_bits(nbits), dtype=np.uint64)
        kernels.k_one(out, nbits)
        assert (out[-1] & ~top_mask(nbits)) == 0
        assert kernels.k_popcount(out) == nbits

    def test_not_in_place_aliasing(self, rng):
        """The CPU uses k_not with out aliasing the input row."""
        a = random_words(rng, 8)
        expected = (~AoB(8, a.copy())).words
        kernels.k_not(a, a, 256)
        assert np.array_equal(a, expected)


class TestSwapKernels:
    def test_swap_exchanges(self, rng):
        a, b = random_words(rng, 7), random_words(rng, 7)
        ca, cb = a.copy(), b.copy()
        kernels.k_swap(a, b)
        assert np.array_equal(a, cb) and np.array_equal(b, ca)

    def test_cswap_masked(self, rng):
        a, b = random_words(rng, 7), random_words(rng, 7)
        ctrl = random_words(rng, 7)
        ea = (a & ~ctrl) | (b & ctrl)
        eb = (b & ~ctrl) | (a & ctrl)
        kernels.k_cswap(a, b, ctrl)
        assert np.array_equal(a, ea) and np.array_equal(b, eb)


class TestMeasKernels:
    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    def test_meas_hadamard(self, channel):
        words = AoB.hadamard(16, 7).words
        assert kernels.k_meas(words, channel, 1 << 16) == (channel >> 7) & 1

    def test_next_spanning_words(self):
        """A 1 several words past the start channel is still found."""
        bits = np.zeros(512, dtype=np.uint8)
        bits[300] = 1
        words = AoB.from_bits(bits).words
        assert kernels.k_next(words, 5, 512) == 300

    def test_next_in_same_word(self):
        bits = np.zeros(512, dtype=np.uint8)
        bits[7] = 1
        words = AoB.from_bits(bits).words
        assert kernels.k_next(words, 5, 512) == 7
        assert kernels.k_next(words, 7, 512) == 0

    def test_pop_after_boundaries(self):
        words = AoB.ones(9).words
        assert kernels.k_pop_after(words, 0, 512) == 511
        assert kernels.k_pop_after(words, 510, 512) == 1
        assert kernels.k_pop_after(words, 511, 512) == 0
        assert kernels.k_pop_after(words, 100000, 512) == 0

    def test_all_on_partial_word(self):
        assert kernels.k_all(AoB.ones(3).words, 8)
        assert not kernels.k_all(AoB.hadamard(3, 0).words, 8)

    def test_all_on_multi_word(self):
        assert kernels.k_all(AoB.ones(8).words, 256)
        almost = AoB.ones(8).to_bool_array()
        almost[100] = False
        assert not kernels.k_all(AoB.from_bits(almost.astype(int)).words, 256)

    def test_any_empty_vs_one_bit(self):
        assert not kernels.k_any(AoB.zeros(10).words)
        bits = np.zeros(1024, dtype=np.uint8)
        bits[1023] = 1
        assert kernels.k_any(AoB.from_bits(bits).words)
