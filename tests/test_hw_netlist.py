"""Structural netlist: construction, analysis, batch evaluation."""

import numpy as np
import pytest

from repro.errors import CircuitError
from repro.hw import Netlist


class TestConstruction:
    def test_inputs_and_consts_are_free(self):
        net = Netlist()
        net.input("a")
        net.const(True)
        assert net.gate_count() == 0
        assert len(net) == 2

    def test_duplicate_input_rejected(self):
        net = Netlist()
        net.input("a")
        with pytest.raises(CircuitError):
            net.input("a")

    def test_input_bus_naming(self):
        net = Netlist()
        bus = net.input_bus("x", 3)
        assert len(bus) == 3

    def test_empty_reduce_rejected(self):
        net = Netlist()
        with pytest.raises(CircuitError):
            net.reduce_or([], wide=True)


class TestAnalysis:
    def test_depth_of_chain(self):
        net = Netlist()
        a = net.input("a")
        x = a
        for _ in range(5):
            x = net.g_not(x)
        net.mark_output("o", [x])
        assert net.depth() == 5

    def test_wide_reduce_depth_one(self):
        net = Netlist()
        bus = net.input_bus("x", 16)
        net.mark_output("o", [net.reduce_or(bus, wide=True)])
        assert net.depth() == 1
        assert net.gate_count() == 1

    def test_tree_reduce_depth_log(self):
        net = Netlist()
        bus = net.input_bus("x", 16)
        net.mark_output("o", [net.reduce_or(bus, wide=False)])
        assert net.depth() == 4
        assert net.gate_count() == 15

    def test_mux_gate_cost(self):
        net = Netlist()
        s, a, b = net.input("s"), net.input("a"), net.input("b")
        net.mark_output("o", [net.g_mux(s, a, b)])
        assert net.gate_count() == 4  # not + 2 and + or

    def test_histogram(self):
        net = Netlist()
        a, b = net.input("a"), net.input("b")
        net.g_and(a, b)
        net.g_xor(a, b)
        net.g_xor(b, a)
        hist = net.gate_histogram()
        assert hist == {"and": 1, "xor": 2}


class TestEvaluation:
    def test_gate_truth_tables(self):
        net = Netlist()
        a, b = net.input("a"), net.input("b")
        net.mark_output("and", [net.g_and(a, b)])
        net.mark_output("or", [net.g_or(a, b)])
        net.mark_output("xor", [net.g_xor(a, b)])
        net.mark_output("not", [net.g_not(a)])
        va = np.array([0, 0, 1, 1], dtype=bool)
        vb = np.array([0, 1, 0, 1], dtype=bool)
        out = net.evaluate({"a": va, "b": vb})
        assert np.array_equal(out["and"][0], va & vb)
        assert np.array_equal(out["or"][0], va | vb)
        assert np.array_equal(out["xor"][0], va ^ vb)
        assert np.array_equal(out["not"][0], ~va)

    def test_mux_semantics(self):
        net = Netlist()
        s, a, b = net.input("s"), net.input("a"), net.input("b")
        net.mark_output("o", [net.g_mux(s, a, b)])
        lanes = {
            "s": np.array([0, 0, 1, 1], dtype=bool),
            "a": np.array([1, 1, 1, 0], dtype=bool),
            "b": np.array([0, 1, 0, 1], dtype=bool),
        }
        out = net.evaluate(lanes)["o"][0]
        assert list(out.astype(int)) == [0, 1, 1, 0]

    def test_wide_vs_tree_reduce_agree(self):
        rngs = np.random.default_rng(7)
        bits = rngs.random((10, 32)) < 0.2
        for wide in (True, False):
            net = Netlist()
            bus = net.input_bus("x", 10)
            net.mark_output("o", [net.reduce_or(bus, wide=wide)])
            out = net.evaluate({f"x[{i}]": bits[i] for i in range(10)})
            assert np.array_equal(out["o"][0], bits.any(axis=0))

    def test_missing_input_raises(self):
        net = Netlist()
        a = net.input("a")
        net.mark_output("o", [net.g_not(a)])
        with pytest.raises(CircuitError):
            net.evaluate({})

    def test_const_evaluation(self):
        net = Netlist()
        net.mark_output("o", [net.const(True), net.const(False)])
        out = net.evaluate({})
        assert out["o"][0].all() and not out["o"][1].any()
