"""Supervised worker-pool tests: timeouts, retries, quarantine, resume.

The chaos fixtures here are the same ones CI's ``chaos-smoke`` job
drives through the CLI: deterministic worker crashes (``os._exit``),
hangs past the shard deadline, and allocations that trip the
``RLIMIT_AS`` ceiling.  The invariants under test are the repo's core
robustness claims -- a supervised fan-out retries/quarantines instead
of aborting, and its merged report stays byte-identical to the serial
path whenever nothing was quarantined.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import sys
import time

import pytest

from repro.errors import SupervisorError
from repro.runtime.supervisor import (
    CHAOS_ENV,
    Supervisor,
    SupervisorConfig,
    SupervisorInterrupted,
    chaos_hook,
    map_supervised,
)


# ---------------------------------------------------------------------------
# Worker functions (top-level: they run in forked worker processes)
# ---------------------------------------------------------------------------

def _echo(payload, attempt):
    return ("echo", payload, attempt)


def _crash_first(payload, attempt):
    if payload == "crashy" and attempt == 0:
        os._exit(1)
    return (payload, attempt)


def _always_crash(payload, attempt):
    os._exit(1)


def _hang_first(payload, attempt):
    if payload == "slow" and attempt == 0:
        time.sleep(600.0)
    return (payload, attempt)


def _always_hang(payload, attempt):
    time.sleep(600.0)


def _always_raise(payload, attempt):
    raise ValueError(f"bad payload {payload}")


def _memory_error_first(payload, attempt):
    if attempt == 0:
        raise MemoryError
    return attempt


def _sleepy(payload, attempt):
    time.sleep(0.2)
    return payload


def _chaos_echo(payload, attempt):
    chaos_hook(payload, attempt)
    return payload


def _bloat_gib(payload, attempt):
    hog = bytearray(1 << 30)
    hog[::4096] = b"x" * len(hog[::4096])
    return len(hog)


def _config(**kwargs) -> SupervisorConfig:
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("backoff_base", 0.01)
    return SupervisorConfig(**kwargs)


def _vm_size_mib() -> int | None:
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmSize:"):
                    return int(line.split()[1]) // 1024
    except OSError:
        pass
    return None


class TestConfig:
    def test_rejects_nonpositive_knobs(self):
        with pytest.raises(SupervisorError):
            SupervisorConfig(jobs=0)
        with pytest.raises(SupervisorError):
            SupervisorConfig(max_attempts=0)
        with pytest.raises(SupervisorError):
            SupervisorConfig(shard_timeout=0.0)
        with pytest.raises(SupervisorError):
            SupervisorConfig(worker_mem_mib=-1)


class TestCleanRun:
    def test_all_shards_ok_and_stats_zero(self):
        outcomes, stats = map_supervised(
            _echo, {i: f"p{i}" for i in range(6)}, _config()
        )
        assert sorted(outcomes) == list(range(6))
        for shard, outcome in outcomes.items():
            assert outcome.ok
            assert outcome.result == ("echo", f"p{shard}", 0)
            assert outcome.attempts == 1
            assert outcome.failures == []
        assert stats.as_dict() == {
            "retries": 0, "timeouts": 0, "crashes": 0, "errors": 0,
            "workers.replaced": 0, "shards.toxic": 0,
        }

    def test_sequence_payloads_enumerate(self):
        outcomes, _ = map_supervised(_echo, ["a", "b", "c"], _config())
        assert outcomes[1].result == ("echo", "b", 0)

    def test_on_result_fires_per_shard(self):
        seen = []
        map_supervised(_echo, {3: "x", 7: "y"}, _config(),
                       on_result=lambda o: seen.append(o.shard))
        assert sorted(seen) == [3, 7]

    def test_empty_payloads(self):
        outcomes, stats = map_supervised(_echo, {}, _config())
        assert outcomes == {}
        assert stats.toxic == 0


class TestCrashRecovery:
    def test_crash_on_first_attempt_heals_on_retry(self):
        events = []
        outcomes, stats = map_supervised(
            _crash_first, {0: "fine", 1: "crashy", 2: "fine"},
            _config(), on_event=events.append,
        )
        assert outcomes[1].ok
        assert outcomes[1].result == ("crashy", 1)
        assert outcomes[1].attempts == 2
        assert outcomes[1].failure_kinds == ["crash"]
        assert stats.crashes == 1
        assert stats.retries == 1
        assert stats.workers_replaced >= 1
        assert stats.toxic == 0
        assert "crashes" in events and "retries" in events
        assert "workers.replaced" in events

    def test_persistent_crash_quarantines_as_toxic(self):
        outcomes, stats = map_supervised(
            _always_crash, {0: "x"}, _config(jobs=1, max_attempts=2),
        )
        outcome = outcomes[0]
        assert not outcome.ok
        assert outcome.attempts == 2
        assert outcome.failure_kinds == ["crash", "crash"]
        assert "quarantined after 2 failed attempt(s)" in \
            outcome.quarantine_message()
        assert stats.toxic == 1
        assert stats.crashes == 2
        assert stats.retries == 1

    def test_exception_failures_keep_the_worker(self):
        outcomes, stats = map_supervised(
            _always_raise, {0: "x"}, _config(jobs=1, max_attempts=3),
        )
        assert not outcomes[0].ok
        assert outcomes[0].failure_kinds == ["error"] * 3
        assert "ValueError" in outcomes[0].failures[-1]["error"]
        assert stats.errors == 3
        # A Python-level exception is reported over the pipe; the
        # worker survives and is never replaced.
        assert stats.workers_replaced == 0


class TestTimeout:
    def test_hung_worker_is_killed_and_shard_retried(self):
        outcomes, stats = map_supervised(
            _hang_first, {0: "fast", 1: "slow"},
            _config(shard_timeout=0.5),
        )
        assert outcomes[0].ok and outcomes[1].ok
        assert outcomes[1].attempts == 2
        assert outcomes[1].failure_kinds == ["timeout"]
        assert stats.timeouts == 1
        assert stats.workers_replaced >= 1

    def test_persistent_hang_quarantines_with_timeout_kind(self):
        outcomes, stats = map_supervised(
            _always_hang, {0: "x"},
            _config(jobs=1, shard_timeout=0.3, max_attempts=1),
        )
        assert not outcomes[0].ok
        assert outcomes[0].failure_kinds == ["timeout"]
        assert "exceeded shard timeout" in outcomes[0].failures[0]["error"]
        assert stats.toxic == 1


class TestMemoryCeiling:
    def test_memory_error_poisons_worker_and_retry_heals(self):
        outcomes, stats = map_supervised(
            _memory_error_first, {0: "x"}, _config(jobs=1),
        )
        assert outcomes[0].ok
        assert outcomes[0].result == 1  # succeeded on attempt 1
        assert outcomes[0].failure_kinds == ["error"]
        assert "memory ceiling" in outcomes[0].failures[0]["error"]
        assert stats.errors == 1
        # MemoryError is untrustworthy heap territory: the worker exits
        # after replying and the parent must replace it.
        assert stats.workers_replaced >= 1

    @pytest.mark.skipif(not sys.platform.startswith("linux"),
                        reason="RLIMIT_AS ceiling semantics need Linux")
    def test_rlimit_as_turns_bloat_into_quarantine(self):
        parent_mib = _vm_size_mib()
        if parent_mib is None:
            pytest.skip("cannot read /proc/self/status")
        # Forked workers inherit the parent's address space, so the
        # ceiling is parent VmSize plus headroom far below the 1 GiB
        # the shard tries to allocate.
        outcomes, stats = map_supervised(
            _bloat_gib, {0: "x"},
            _config(jobs=1, max_attempts=1,
                    worker_mem_mib=parent_mib + 256),
        )
        assert not outcomes[0].ok
        assert stats.toxic == 1
        assert outcomes[0].failure_kinds in (["error"], ["crash"])


class TestInterrupt:
    def test_sigint_raises_interrupted_with_partial_outcomes(self):
        supervisor = Supervisor(_sleepy, _config(jobs=2))

        def _raise_interrupt(signum, frame):
            raise KeyboardInterrupt

        previous = signal.signal(signal.SIGALRM, _raise_interrupt)
        signal.setitimer(signal.ITIMER_REAL, 0.6)
        try:
            with pytest.raises(SupervisorInterrupted) as info:
                supervisor.run({i: i for i in range(20)})
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
        stop = info.value
        assert 0 < len(stop.outcomes) < 20
        assert stop.total == 20
        # Workers were terminated before the exception propagated.
        deadline = time.monotonic() + 5.0
        while multiprocessing.active_children() and \
                time.monotonic() < deadline:
            time.sleep(0.05)
        assert multiprocessing.active_children() == []


class TestChaosHook:
    def test_inert_in_the_parent_process(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "crash:0:99")
        chaos_hook(0, 0)  # would os._exit(1) in a worker

    def test_ignores_malformed_directives(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "nonsense")
        chaos_hook(0, 0)
        monkeypatch.setenv(CHAOS_ENV, "crash:zero:0")
        chaos_hook(0, 0)

    def test_crash_directive_fires_in_workers(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "crash:2:99")
        outcomes, stats = map_supervised(
            _chaos_echo, {i: i for i in range(4)},
            _config(jobs=2, max_attempts=1),
        )
        assert not outcomes[2].ok
        assert outcomes[2].failure_kinds == ["crash"]
        assert all(outcomes[i].ok for i in (0, 1, 3))
        assert stats.toxic == 1


# ---------------------------------------------------------------------------
# Campaign / bench integration (the supervised report contracts)
# ---------------------------------------------------------------------------

class TestCampaignIntegration:
    def test_chaos_crash_once_report_byte_identical(self, monkeypatch):
        from repro.faults.campaign import render_report, run_campaign

        serial = run_campaign(program="fig10", runs=6, seed=7, jobs=1)
        monkeypatch.setenv(CHAOS_ENV, "crash:3:0")
        chaotic = run_campaign(program="fig10", runs=6, seed=7, jobs=3)
        assert render_report(chaotic) == render_report(serial)

    def test_persistent_crash_shard_becomes_toxic_detail(self, monkeypatch):
        from repro.faults.campaign import run_campaign

        monkeypatch.setenv(CHAOS_ENV, "crash:2:99")
        report = run_campaign(
            program="fig10", runs=6, seed=7, jobs=3,
            supervise=SupervisorConfig(jobs=3, max_attempts=2,
                                       backoff_base=0.01),
        )
        assert report["summary"]["toxic"] == 1
        detail = report["runs_detail"][2]
        assert detail["outcome"] == "toxic"
        assert detail["run"] == 2
        assert detail["seed"] == 7 * 1_000_003 + 2
        assert detail["events"] == [] and detail["traps"] == []
        assert detail["failures"] == ["crash", "crash"]
        assert "quarantined" in detail["error"]
        healthy = [d for d in report["runs_detail"]
                   if d["outcome"] != "toxic"]
        assert len(healthy) == 5

    def test_serial_summary_carries_toxic_keys(self):
        from repro.faults.campaign import run_campaign

        report = run_campaign(program="fig10", runs=3, seed=7, jobs=1)
        assert report["summary"]["toxic"] == 0
        assert report["summary"]["toxic_rate"] == 0.0

    def test_resume_reexecutes_only_missing_and_toxic(self, monkeypatch,
                                                      tmp_path):
        import repro.faults.campaign as campaign_mod
        from repro.faults.campaign import render_report, run_campaign
        from repro.obs.ledger import ShardJournal

        ledger = str(tmp_path / "ledger.db")
        serial = run_campaign(program="fig10", runs=6, seed=7, jobs=1)

        monkeypatch.setenv(CHAOS_ENV, "crash:4:99")
        first = run_campaign(
            program="fig10", runs=6, seed=7, jobs=3,
            journal=ShardJournal("resumable", path=ledger),
            supervise=SupervisorConfig(jobs=3, max_attempts=2,
                                       backoff_base=0.01),
        )
        assert first["summary"]["toxic"] == 1
        monkeypatch.delenv(CHAOS_ENV)

        executed = []
        original = campaign_mod._single_run

        def counting(task, attempt=0):
            executed.append(task[0])
            return original(task, attempt)

        monkeypatch.setattr(campaign_mod, "_single_run", counting)
        resumed = run_campaign(
            program="fig10", runs=6, seed=7, jobs=1,
            journal=ShardJournal("resumable", path=ledger, resume=True),
        )
        assert executed == [4]  # only the quarantined shard reran
        assert render_report(resumed) == render_report(serial)

    def test_resume_refuses_drifted_arguments(self, tmp_path):
        from repro.faults.campaign import run_campaign
        from repro.obs.ledger import ShardJournal

        ledger = str(tmp_path / "ledger.db")
        run_campaign(program="fig10", runs=3, seed=7, jobs=1,
                     journal=ShardJournal("pinned", path=ledger))
        with pytest.raises(SupervisorError, match="seed"):
            run_campaign(
                program="fig10", runs=3, seed=8, jobs=1,
                journal=ShardJournal("pinned", path=ledger, resume=True),
            )

    def test_interrupt_yields_partial_report_with_flag(self, monkeypatch):
        from repro.faults.campaign import CampaignInterrupted, run_campaign

        # Shard 3 hangs forever (no shard timeout); the alarm interrupts
        # the parent once every other run has finished.
        monkeypatch.setenv(CHAOS_ENV, "hang:3:99")

        def _raise_interrupt(signum, frame):
            raise KeyboardInterrupt

        previous = signal.signal(signal.SIGALRM, _raise_interrupt)
        signal.setitimer(signal.ITIMER_REAL, 1.5)
        try:
            with pytest.raises(CampaignInterrupted) as info:
                run_campaign(program="fig10", runs=8, seed=7, jobs=2)
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
        stop = info.value
        report = stop.report
        assert report["interrupted"] is True
        assert stop.done == len(report["runs_detail"]) < 8
        assert all(d["run"] != 3 for d in report["runs_detail"])


class TestBenchIntegration:
    def _specs(self):
        from repro.obs.bench import default_specs

        wanted = ("factor.n221", "chunkstore.s12")
        return [s for s in default_specs() if s.name in wanted]

    def test_supervised_counters_match_serial(self):
        from repro.obs.bench import run_suite

        specs = self._specs()
        serial = run_suite(specs=specs, rounds=2, warmup=0, jobs=1)
        fanout = run_suite(specs=specs, rounds=2, warmup=0, jobs=2)
        for name in serial["benches"]:
            assert fanout["benches"][name]["counters"] == \
                serial["benches"][name]["counters"]

    def test_toxic_round_quarantines_the_bench(self, monkeypatch):
        from repro.obs.bench import run_suite

        # Shard 0 is factor.n221 round 0 (suite order x rounds).
        monkeypatch.setenv(CHAOS_ENV, "crash:0:99")
        report = run_suite(
            specs=self._specs(), rounds=2, warmup=0, jobs=2,
            supervise=SupervisorConfig(jobs=2, max_attempts=1,
                                       backoff_base=0.01),
        )
        entry = report["benches"]["factor.n221"]
        assert entry["toxic"] is True
        assert entry["failures"] == ["crash"]
        assert "counters" not in entry
        assert "counters" in report["benches"]["chunkstore.s12"]

    def test_compare_reports_guards_toxic_entries(self, monkeypatch):
        from repro.obs.bench import compare_reports, regressions, run_suite

        specs = self._specs()
        healthy = run_suite(specs=specs, rounds=2, warmup=0, jobs=1)
        monkeypatch.setenv(CHAOS_ENV, "crash:0:99")
        toxic = run_suite(
            specs=specs, rounds=2, warmup=0, jobs=2,
            supervise=SupervisorConfig(jobs=2, max_attempts=1,
                                       backoff_base=0.01),
        )
        rows = compare_reports(toxic, healthy)
        toxic_rows = [r for r in rows if r["kind"] == "toxic"]
        assert [r["bench"] for r in toxic_rows] == ["factor.n221"]
        assert toxic_rows[0]["verdict"] == "regressed"
        assert toxic_rows[0] in regressions(rows)
        # The healthy bench still compares counter by counter.
        assert any(r["bench"] == "chunkstore.s12" and r["kind"] == "counter"
                   for r in rows)

    def test_bench_journal_resume_reexecutes_missing_rounds(self, tmp_path):
        from repro.obs.bench import run_suite
        from repro.obs.ledger import SHARD_DONE, ShardJournal

        ledger = str(tmp_path / "ledger.db")
        specs = self._specs()
        serial = run_suite(specs=specs, rounds=2, warmup=0, jobs=1,
                           journal=ShardJournal("bench-run", path=ledger))
        # Drop one journaled round to simulate an interrupt, then resume.
        import sqlite3

        conn = sqlite3.connect(ledger)
        conn.execute(
            "DELETE FROM shards WHERE run_id = 'bench-run' AND shard = 3"
        )
        conn.commit()
        conn.close()
        resumed = run_suite(
            specs=specs, rounds=2, warmup=0, jobs=1,
            journal=ShardJournal("bench-run", path=ledger, resume=True),
        )
        for name in serial["benches"]:
            assert resumed["benches"][name]["counters"] == \
                serial["benches"][name]["counters"]
        conn = sqlite3.connect(ledger)
        count = conn.execute(
            "SELECT COUNT(*) FROM shards WHERE run_id = 'bench-run' "
            "AND shard >= 0 AND status = ?", (SHARD_DONE,),
        ).fetchone()[0]
        conn.close()
        assert count == 4  # the deleted round was re-journaled
