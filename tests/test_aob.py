"""AoB value-type tests, including property tests against a dense
bool-array reference model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.aob import AoB
from repro.errors import EntanglementError, MeasurementError

WAYS = st.integers(min_value=0, max_value=9)


def aob_strategy(ways):
    """Random AoB of fixed ways as (AoB, reference bool array)."""
    nbits = 1 << ways
    return st.lists(
        st.integers(min_value=0, max_value=1), min_size=nbits, max_size=nbits
    ).map(lambda bits: (AoB.from_bits(bits), np.array(bits, dtype=bool)))


class TestConstruction:
    def test_zeros(self):
        a = AoB.zeros(4)
        assert a.popcount() == 0
        assert not a.any()

    def test_ones(self):
        a = AoB.ones(4)
        assert a.popcount() == 16
        assert a.all()

    def test_ones_partial_word(self):
        a = AoB.ones(3)
        assert a.popcount() == 8
        assert a.to_int() == 0xFF

    def test_constant(self):
        assert AoB.constant(5, 0) == AoB.zeros(5)
        assert AoB.constant(5, 1) == AoB.ones(5)

    def test_constant_rejects_bad_bit(self):
        with pytest.raises(ValueError):
            AoB.constant(5, 2)

    def test_from_bits_roundtrip(self):
        bits = [1, 0, 0, 1, 1, 1, 0, 0]
        a = AoB.from_bits(bits)
        assert list(a.to_bool_array().astype(int)) == bits

    def test_from_bits_rejects_non_power_of_two(self):
        with pytest.raises(EntanglementError):
            AoB.from_bits([1, 0, 1])

    def test_from_bits_rejects_non_binary(self):
        with pytest.raises(ValueError):
            AoB.from_bits([0, 2, 0, 1])

    def test_from_int_roundtrip(self):
        a = AoB.from_int(7, 0xDEADBEEF_CAFEF00D >> 2 & ((1 << 128) - 1))
        assert AoB.from_int(7, a.to_int()) == a

    def test_from_int_rejects_oversized(self):
        with pytest.raises(ValueError):
            AoB.from_int(3, 1 << 8)

    def test_too_many_ways_rejected(self):
        with pytest.raises(EntanglementError):
            AoB.zeros(40)

    def test_words_are_read_only(self):
        a = AoB.zeros(8)
        with pytest.raises(ValueError):
            a.words[0] = 1

    def test_random_probability(self, rng):
        a = AoB.random(14, rng, p=0.25)
        assert 0.2 < a.probability() < 0.3

    @given(WAYS)
    def test_len_is_two_to_ways(self, ways):
        assert len(AoB.zeros(ways)) == 1 << ways


class TestGateProperties:
    @given(st.integers(min_value=0, max_value=7).flatmap(
        lambda w: st.tuples(aob_strategy(w), aob_strategy(w))))
    def test_binary_ops_match_reference(self, pair):
        (a, ra), (b, rb) = pair
        assert np.array_equal((a & b).to_bool_array(), ra & rb)
        assert np.array_equal((a | b).to_bool_array(), ra | rb)
        assert np.array_equal((a ^ b).to_bool_array(), ra ^ rb)

    @given(st.integers(min_value=0, max_value=7).flatmap(aob_strategy))
    def test_not_matches_reference(self, pair):
        a, ra = pair
        assert np.array_equal((~a).to_bool_array(), ~ra)

    @given(st.integers(min_value=0, max_value=7).flatmap(aob_strategy))
    def test_not_is_involution(self, pair):
        a, _ = pair
        assert ~~a == a

    @given(st.integers(min_value=0, max_value=6).flatmap(
        lambda w: st.tuples(aob_strategy(w), aob_strategy(w))))
    def test_cnot_is_involution(self, pair):
        (a, _), (b, _) = pair
        assert a.cnot(b).cnot(b) == a

    @given(st.integers(min_value=0, max_value=6).flatmap(
        lambda w: st.tuples(aob_strategy(w), aob_strategy(w), aob_strategy(w))))
    def test_ccnot_is_involution(self, triple):
        (a, _), (b, _), (c, _) = triple
        assert a.ccnot(b, c).ccnot(b, c) == a

    @given(st.integers(min_value=0, max_value=6).flatmap(
        lambda w: st.tuples(aob_strategy(w), aob_strategy(w), aob_strategy(w))))
    def test_cswap_is_involution(self, triple):
        (a, _), (b, _), (c, _) = triple
        x, y = a.cswap(b, c)
        back_x, back_y = x.cswap(y, c)
        assert back_x == a and back_y == b

    @given(st.integers(min_value=0, max_value=6).flatmap(
        lambda w: st.tuples(aob_strategy(w), aob_strategy(w), aob_strategy(w))))
    def test_cswap_conserves_bits(self, triple):
        """Billiard-ball conservancy (paper section 2.5)."""
        (a, _), (b, _), (c, _) = triple
        x, y = a.cswap(b, c)
        assert x.popcount() + y.popcount() == a.popcount() + b.popcount()

    @given(st.integers(min_value=0, max_value=6).flatmap(
        lambda w: st.tuples(aob_strategy(w), aob_strategy(w))))
    def test_cswap_with_ones_is_swap(self, pair):
        (a, _), (b, _) = pair
        x, y = a.cswap(b, AoB.ones(a.ways))
        assert x == b and y == a

    @given(st.integers(min_value=0, max_value=6).flatmap(
        lambda w: st.tuples(aob_strategy(w), aob_strategy(w))))
    def test_cswap_with_zeros_is_identity(self, pair):
        (a, _), (b, _) = pair
        x, y = a.cswap(b, AoB.zeros(a.ways))
        assert x == a and y == b

    def test_mismatched_ways_rejected(self):
        with pytest.raises(EntanglementError):
            AoB.zeros(3) & AoB.zeros(4)

    def test_cswap_mismatched_ways_rejected(self):
        with pytest.raises(EntanglementError):
            AoB.zeros(3).cswap(AoB.zeros(3), AoB.zeros(4))


class TestMeasurement:
    @given(st.integers(min_value=0, max_value=8).flatmap(aob_strategy))
    def test_meas_matches_reference(self, pair):
        a, ref = pair
        for channel in range(len(ref)):
            assert a.meas(channel) == int(ref[channel])

    @given(st.integers(min_value=0, max_value=8).flatmap(aob_strategy),
           st.integers(min_value=0, max_value=300))
    def test_next_matches_reference(self, pair, start):
        a, ref = pair
        ones = np.flatnonzero(ref)
        after = ones[ones > start]
        expected = int(after[0]) if after.size else 0
        assert a.next(start) == expected

    @given(st.integers(min_value=0, max_value=8).flatmap(aob_strategy),
           st.integers(min_value=0, max_value=300))
    def test_pop_after_matches_reference(self, pair, start):
        a, ref = pair
        ones = np.flatnonzero(ref)
        assert a.pop_after(start) == int((ones > start).sum())

    @given(st.integers(min_value=0, max_value=8).flatmap(aob_strategy))
    def test_popcount_and_reductions(self, pair):
        a, ref = pair
        assert a.popcount() == int(ref.sum())
        assert a.any() == bool(ref.any())
        assert a.all() == bool(ref.all())
        assert a.probability() == ref.mean()

    @given(st.integers(min_value=0, max_value=8).flatmap(aob_strategy))
    def test_iter_ones_matches_reference(self, pair):
        a, ref = pair
        assert list(a.iter_ones()) == list(np.flatnonzero(ref))

    @given(st.integers(min_value=0, max_value=8).flatmap(aob_strategy))
    def test_measurement_is_nondestructive(self, pair):
        """Section 2.7: reading never changes the value."""
        a, _ = pair
        before = a.to_int()
        a.meas(0)
        a.next(0)
        a.pop_after(0)
        a.popcount()
        list(a.iter_ones())
        assert a.to_int() == before

    def test_paper_next_example(self):
        """The worked example from section 2.7: had @123,4 then
        next from 42 yields 48."""
        a = AoB.hadamard(16, 4)
        assert a.next(42) == 48

    def test_meas_wraps_channel(self):
        a = AoB.from_bits([0, 1, 0, 0])
        assert a.meas(1) == 1
        assert a.meas(5) == 1  # 5 mod 4 == 1

    def test_negative_channel_rejected(self):
        a = AoB.zeros(4)
        with pytest.raises(MeasurementError):
            a.meas(-1)
        with pytest.raises(MeasurementError):
            a.next(-1)
        with pytest.raises(MeasurementError):
            a.pop_after(-1)

    def test_next_past_end_returns_zero(self):
        a = AoB.ones(4)
        assert a.next(15) == 0
        assert a.next(100) == 0

    def test_getitem_is_meas(self):
        a = AoB.from_bits([0, 1, 1, 0])
        assert a[0] == 0 and a[1] == 1 and a[2] == 1 and a[3] == 0


class TestValueProtocol:
    def test_equality_and_hash(self):
        a = AoB.from_bits([0, 1, 1, 0])
        b = AoB.from_bits([0, 1, 1, 0])
        assert a == b
        assert hash(a) == hash(b)
        assert a != AoB.from_bits([0, 1, 1, 1])

    def test_equality_different_ways(self):
        assert AoB.zeros(3) != AoB.zeros(4)

    def test_rle_string(self):
        assert AoB.from_bits([0, 0, 1, 1]).to_rle_string() == "0^2 1^2"
        assert AoB.from_bits([0, 1, 0, 1]).to_rle_string() == "0 1 0 1"

    def test_repr_mentions_ways(self):
        assert "ways=3" in repr(AoB.zeros(3))
