"""Batched simulator: lockstep equivalence with the serial fast path.

The contract of :mod:`repro.cpu.batch` is that N lanes stepped in
lockstep over NumPy arrays are architecturally indistinguishable from
N serial :class:`~repro.cpu.FunctionalSimulator` runs: same registers,
memory, Qat state, output, trap records (mapped per lane), same error
strings for parked lanes, and -- the bar the campaign driver relies on
-- byte-identical campaign reports for ``--batch N`` vs serial.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.cpu import BatchFunctionalSimulator, FunctionalSimulator
from repro.errors import ReproError, SimulatorError
from repro.faults.campaign import render_report, run_campaign
from repro.faults.inject import FaultPlan, apply_event
from repro.faults.traps import TrapCause, TrapDelivered

from tests.test_pipeline import random_program

BACKENDS = ["dense", "re"]


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------

def _serial_run(words, plan, *, ways, backend, max_steps):
    """One serial lane: campaign-style drive with per-step fault events.

    Returns ``(sim, error)`` where ``error`` is the stringified trap
    for a run that died (what the batch engine parks the lane with).
    """
    sim = FunctionalSimulator(ways=ways, qat_backend=backend)
    sim.use_fastpath = False  # step() loop so events land between steps
    sim.load(list(words))
    error = None
    step = 0
    try:
        while not sim.machine.halted:
            if step >= max_steps:
                try:
                    sim.machine.trap(
                        TrapCause.WATCHDOG,
                        detail=f"exceeded {max_steps} steps without halting",
                    )
                except TrapDelivered:
                    pass
                break
            if plan is not None:
                for event in plan.due(step):
                    apply_event(sim.machine, event)
            sim.step()
            step += 1
    except SimulatorError as exc:
        error = str(exc)
    return sim, error


def _batch_run(words, plans, *, ways, backend, max_steps):
    batch = BatchFunctionalSimulator(len(plans), ways=ways,
                                     qat_backend=backend)
    batch.load(list(words))
    batch.run(max_steps=max_steps, plans=plans)
    return batch


def _assert_lane_matches(sim, error, batch, lane) -> None:
    bm = batch.machines
    m = sim.machine
    assert np.array_equal(np.asarray(m.regs, dtype=np.uint16),
                          bm.regs[lane])
    assert np.array_equal(np.asarray(m.mem, dtype=np.uint16), bm.mem[lane])
    assert [r.as_dict() for r in m.traps] == \
        [r.as_dict() for r in bm.traps[lane]]
    assert list(m.output) == list(bm.output[lane])
    assert error == bm.errors[lane]
    if error is None:
        # A parked lane's pc/instret freeze where the trap fired, which
        # for a raising trap the serial path never observes.
        assert m.pc == int(bm.pc[lane])
        assert m.instret == int(bm.instret[lane])
        assert m.halted == bool(bm.halted[lane])
        assert [m.read_qreg(i) for i in range(256)] == \
            [bm.read_qreg(lane, i) for i in range(256)]


# ---------------------------------------------------------------------------
# State differential: random programs x fault plans x backends
# ---------------------------------------------------------------------------

class TestBatchVsSerialState:
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_random_programs_lockstep(self, backend, data):
        words = random_program(data)
        lanes = 5
        plans = [None] * lanes
        batch = _batch_run(words, plans, ways=6, backend=backend,
                           max_steps=2000)
        sim, error = _serial_run(words, None, ways=6, backend=backend,
                                 max_steps=2000)
        for lane in range(lanes):
            _assert_lane_matches(sim, error, batch, lane)

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=8, deadline=None)
    @given(data=st.data())
    def test_random_programs_with_fault_plans(self, backend, data):
        """Each lane gets its own plan; serial lanes must match 1:1."""
        words = random_program(data)
        plans = [
            FaultPlan.from_seed(seed, n_faults=2, max_step=64, ways=6,
                                targets=("gpr", "mem", "qreg", "pc"))
            for seed in (data.draw(st.integers(0, 2**31)),
                         data.draw(st.integers(0, 2**31)),
                         None)
            if seed is not None
        ] + [None]
        batch = _batch_run(words, plans, ways=6, backend=backend,
                           max_steps=400)
        for lane, plan in enumerate(plans):
            sim, error = _serial_run(words, plan, ways=6, backend=backend,
                                     max_steps=400)
            _assert_lane_matches(sim, error, batch, lane)

    def test_divergent_lanes_park_independently(self):
        """A lane that traps parks; the others run to completion."""
        words = assemble(
            "lex $1, 40\n"
            "load $2, $1\n"       # word 40 differs per lane after injection
            "brt $2, bad\n"
            "lex $rv, 0\n"
            "sys\n"
            "bad:\n"
        ).words + [0x6000]        # illegal opcode on the poisoned path
        from repro.faults.inject import FaultEvent
        poison = FaultPlan(seed=0, events=(
            FaultEvent(step=0, target="mem", index=40, word=0, bit=0),))
        batch = _batch_run(words, [None, poison, None],
                           ways=6, backend="dense", max_steps=100)
        bm = batch.machines
        assert bool(bm.halted[0]) and bool(bm.halted[2])
        assert bool(bm.parked[1]) and not bm.halted[1]
        assert "unassigned major opcode" in bm.errors[1]
        assert [r.cause.value for r in bm.traps[1]] == ["illegal_opcode"]

    def test_watchdog_parks_all_active_lanes(self):
        words = assemble("spin: br spin\n").words
        batch = _batch_run(words, [None] * 3, ways=6,
                           backend="dense", max_steps=10)
        bm = batch.machines
        assert bm.parked.all()
        for lane in range(3):
            assert "exceeded 10 steps" in bm.errors[lane]
            assert bm.traps[lane][-1].cause is TrapCause.WATCHDOG


# ---------------------------------------------------------------------------
# Campaign report bytes: --batch N vs serial vs --jobs
# ---------------------------------------------------------------------------

class TestBatchCampaignBytes:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("batch", [3, 16])
    def test_report_bytes_identical(self, backend, batch):
        kwargs = dict(program="fig10", runs=12, seed=7, faults_per_run=2,
                      targets=("gpr", "mem", "qreg", "pc"),
                      qat_backend=backend)
        serial = run_campaign(**kwargs)
        batched = run_campaign(batch=batch, **kwargs)
        assert render_report(serial).encode() == \
            render_report(batched).encode()

    def test_report_bytes_identical_factor(self):
        serial = run_campaign(program="factor", runs=6, seed=11)
        batched = run_campaign(program="factor", runs=6, seed=11, batch=4)
        assert render_report(serial).encode() == \
            render_report(batched).encode()

    def test_batch_matches_jobs(self):
        jobs = run_campaign(program="fig10", runs=8, seed=7, jobs=2)
        batched = run_campaign(program="fig10", runs=8, seed=7, batch=8)
        assert render_report(jobs).encode() == \
            render_report(batched).encode()

    def test_batch_needs_functional_sim(self):
        with pytest.raises(ReproError, match="functional"):
            run_campaign(runs=2, batch=2, sim="multicycle")

    def test_batch_and_jobs_mutually_exclusive(self):
        with pytest.raises(ReproError, match="mutually exclusive"):
            run_campaign(runs=2, batch=2, jobs=2)

    def test_batch_must_be_positive(self):
        with pytest.raises(ReproError, match="positive"):
            run_campaign(runs=2, batch=0)
