"""Gate-level optimizer: identities, CSE, DCE, and semantic preservation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.aob import AoB
from repro.gates import GateCircuit, optimize
from repro.gates.alg import ValueAlgebra
from repro.gates.optimizer import (
    eliminate_common_subexpressions,
    eliminate_dead_gates,
    fold_constants,
)


def random_circuit(data, num_gates=20, ways=4):
    """Build a random circuit over H(0..3) leaves."""
    c = GateCircuit()
    nodes = [c.had(k) for k in range(4)] + [c.const(0), c.const(1)]
    for _ in range(num_gates):
        op = data.draw(st.sampled_from(["and", "or", "xor", "not"]))
        a = data.draw(st.sampled_from(nodes))
        if op == "not":
            nodes.append(c.bnot(a))
        else:
            b = data.draw(st.sampled_from(nodes))
            nodes.append(getattr(c, f"b{op}" if op != "not" else op)(a, b))
    c.mark_output("o", nodes[-1])
    return c


class TestFoldConstants:
    def _single(self, build):
        c = GateCircuit()
        build(c)
        return fold_constants(c)

    def test_and_with_zero(self):
        c = GateCircuit()
        h = c.had(0)
        c.mark_output("o", c.band(h, c.const(0)))
        out = fold_constants(c)
        assert out.gate_count() == 0
        assert out.nodes[out.outputs["o"]].op == "const0"

    def test_and_with_one(self):
        c = GateCircuit()
        h = c.had(0)
        c.mark_output("o", c.band(h, c.const(1)))
        out = fold_constants(c)
        assert out.nodes[out.outputs["o"]].op == "had"

    def test_xor_self_is_zero(self):
        c = GateCircuit()
        h = c.had(0)
        c.mark_output("o", c.bxor(h, h))
        out = fold_constants(c)
        assert out.nodes[out.outputs["o"]].op == "const0"

    def test_xor_with_one_becomes_not(self):
        c = GateCircuit()
        h = c.had(0)
        c.mark_output("o", c.bxor(h, c.const(1)))
        out = fold_constants(c)
        assert out.nodes[out.outputs["o"]].op == "not"

    def test_or_with_one(self):
        c = GateCircuit()
        h = c.had(0)
        c.mark_output("o", c.bor(c.const(1), h))
        out = fold_constants(c)
        assert out.nodes[out.outputs["o"]].op == "const1"

    def test_double_not_cancels(self):
        c = GateCircuit()
        h = c.had(0)
        c.mark_output("o", c.bnot(c.bnot(h)))
        out = fold_constants(c)
        assert out.nodes[out.outputs["o"]].op == "had"

    def test_not_of_const(self):
        c = GateCircuit()
        c.mark_output("o", c.bnot(c.const(0)))
        out = fold_constants(c)
        assert out.nodes[out.outputs["o"]].op == "const1"

    def test_idempotent_and(self):
        c = GateCircuit()
        h = c.had(2)
        c.mark_output("o", c.band(h, h))
        out = fold_constants(c)
        assert out.nodes[out.outputs["o"]].op == "had"


class TestCse:
    def test_merges_identical(self):
        c = GateCircuit()
        a, b = c.had(0), c.had(1)
        x = c.band(a, b)
        y = c.band(a, b)
        c.mark_output("o", c.bxor(x, y))
        out = eliminate_common_subexpressions(out_in := c)
        hist = out.op_histogram()
        assert hist["and"] == 1

    def test_commutative_canonicalization(self):
        c = GateCircuit()
        a, b = c.had(0), c.had(1)
        x = c.band(a, b)
        y = c.band(b, a)
        c.mark_output("o", c.bxor(x, y))
        out = eliminate_common_subexpressions(c)
        assert out.op_histogram()["and"] == 1

    def test_merges_duplicate_leaves(self):
        c = GateCircuit()
        h1, h2 = c.had(3), c.had(3)
        c.mark_output("o", c.bxor(h1, h2))
        out = eliminate_common_subexpressions(c)
        assert out.op_histogram()["had"] == 1


class TestDce:
    def test_removes_unreachable(self):
        c = GateCircuit()
        a, b = c.had(0), c.had(1)
        c.band(a, b)  # dead
        c.mark_output("o", c.bxor(a, b))
        out = eliminate_dead_gates(c)
        assert "and" not in out.op_histogram()

    def test_keeps_all_outputs(self):
        c = GateCircuit()
        a, b = c.had(0), c.had(1)
        c.mark_output("x", c.band(a, b))
        c.mark_output("y", c.bor(a, b))
        out = eliminate_dead_gates(c)
        assert set(out.outputs) == {"x", "y"}
        assert out.gate_count() == 2


class TestOptimizeEquivalence:
    @given(st.data())
    def test_optimization_preserves_semantics(self, data):
        circuit = random_circuit(data)
        optimized = optimize(circuit)
        alg = ValueAlgebra(4, AoB)
        assert circuit.evaluate(alg) == optimized.evaluate(alg)

    @given(st.data())
    def test_optimization_never_grows(self, data):
        circuit = random_circuit(data)
        optimized = optimize(circuit)
        assert optimized.gate_count() <= circuit.gate_count()

    def test_reduces_the_factor_circuit(self):
        """The LCPC'17-style claim: gate-level optimization shrinks real
        circuits substantially."""
        from repro.apps.fig10 import build_factor_circuit

        raw = build_factor_circuit(15, 4, 4, optimized=False)
        opt = build_factor_circuit(15, 4, 4, optimized=True)
        assert opt.gate_count() < raw.gate_count()
        alg = ValueAlgebra(8, AoB)
        assert raw.evaluate(alg) == opt.evaluate(alg)
