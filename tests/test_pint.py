"""Pint arithmetic: channel-wise equivalence with Python integers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EntanglementError
from repro.pbp import PbpContext


def two_words(ways_each=3):
    """Context with two disjoint Hadamard words a (low channels) and b."""
    ctx = PbpContext(ways=2 * ways_each)
    a = ctx.pint_h(ways_each, (1 << ways_each) - 1)
    b = ctx.pint_h(ways_each, ((1 << ways_each) - 1) << ways_each)
    return ctx, a, b


def channel_values(ways_each):
    mask = (1 << ways_each) - 1
    for e in range(1 << (2 * ways_each)):
        yield e, e & mask, e >> ways_each


class TestArithmetic:
    def test_add_wraps(self):
        _, a, b = two_words()
        s = a + b
        for e, va, vb in channel_values(3):
            assert s.at(e) == (va + vb) & 7

    def test_add_expand_keeps_carry(self):
        _, a, b = two_words()
        s = a.add_expand(b)
        assert s.width == 4
        for e, va, vb in channel_values(3):
            assert s.at(e) == va + vb

    def test_sub_wraps(self):
        _, a, b = two_words()
        d = a - b
        for e, va, vb in channel_values(3):
            assert d.at(e) == (va - vb) & 7

    def test_mul_full_width(self):
        _, a, b = two_words()
        p = a * b
        assert p.width == 6
        for e, va, vb in channel_values(3):
            assert p.at(e) == va * vb

    def test_mixed_width_add(self):
        ctx = PbpContext(ways=5)
        a = ctx.pint_h(3, 0b00111)
        b = ctx.pint_h(2, 0b11000)
        s = a + b
        assert s.width == 3
        for e in range(32):
            assert s.at(e) == ((e & 7) + (e >> 3)) & 7

    def test_shift_left(self):
        ctx = PbpContext(ways=3)
        a = ctx.pint_h(3, 0b111)
        shifted = a << 2
        assert shifted.width == 5
        for e in range(8):
            assert shifted.at(e) == e << 2


class TestComparisons:
    def test_eq(self):
        _, a, b = two_words()
        e_bit = a.eq(b)
        for e, va, vb in channel_values(3):
            assert e_bit.at(e) == int(va == vb)

    def test_eq_const(self):
        ctx = PbpContext(ways=4)
        a = ctx.pint_h(4, 0xF)
        bit = a.eq_const(11)
        for e in range(16):
            assert bit.at(e) == int(e == 11)

    def test_ne(self):
        _, a, b = two_words()
        bit = a.ne(b)
        for e, va, vb in channel_values(3):
            assert bit.at(e) == int(va != vb)

    def test_lt(self):
        _, a, b = two_words()
        bit = a.lt(b)
        for e, va, vb in channel_values(3):
            assert bit.at(e) == int(va < vb)

    def test_le_gt_ge(self):
        _, a, b = two_words()
        le, gt, ge = a.le(b), a.gt(b), a.ge(b)
        for e, va, vb in channel_values(3):
            assert le.at(e) == int(va <= vb)
            assert gt.at(e) == int(va > vb)
            assert ge.at(e) == int(va >= vb)

    def test_min_max(self):
        _, a, b = two_words()
        lo, hi = a.min(b), a.max(b)
        for e, va, vb in channel_values(3):
            assert lo.at(e) == min(va, vb)
            assert hi.at(e) == max(va, vb)

    def test_min_max_mixed_width(self):
        ctx = PbpContext(ways=5)
        a = ctx.pint_h(3, 0b00111)
        b = ctx.pint_h(2, 0b11000)
        lo = a.min(b)
        for e in range(32):
            assert lo.at(e) == min(e & 7, e >> 3)

    def test_square(self):
        ctx = PbpContext(ways=4)
        a = ctx.pint_h(4, 0xF)
        sq = a.square()
        for e in range(16):
            assert sq.at(e) == e * e


class TestBitwise:
    def test_and_or_xor_not(self):
        _, a, b = two_words()
        for e, va, vb in channel_values(3):
            assert (a & b).at(e) == (va & vb)
            assert (a | b).at(e) == (va | vb)
            assert (a ^ b).at(e) == (va ^ vb)
            assert (~a).at(e) == (~va) & 7

    def test_bitwise_needs_same_width(self):
        ctx = PbpContext(ways=4)
        a = ctx.pint_h(3, 0b0111)
        b = ctx.pint_h(1, 0b1000)
        with pytest.raises(EntanglementError):
            a & b

    def test_mux(self):
        ctx, a, b = two_words(2)
        sel = a.eq(b)  # 1 where equal
        out = sel.mux(a, b)
        for e, va, vb in channel_values(2):
            assert out.at(e) == (va if va == vb else vb)

    def test_mux_needs_single_pbit(self):
        ctx, a, b = two_words(2)
        with pytest.raises(EntanglementError):
            a.mux(a, b)


class TestChannelTracking:
    def test_product_unions_channels(self):
        """Figure 9: b*c over disjoint sets is entangled over the union."""
        ctx, a, b = two_words(3)
        assert (a * b).channels == 0b111111

    def test_constant_has_no_channels(self):
        ctx = PbpContext(ways=4)
        assert ctx.pint_mk(4, 5).channels == 0

    def test_cross_context_rejected(self):
        c1, c2 = PbpContext(ways=4), PbpContext(ways=4)
        a = c1.pint_mk(2, 1)
        b = c2.pint_mk(2, 1)
        with pytest.raises(EntanglementError):
            a + b


class TestShareChannelCaution:
    def test_same_channels_give_squares(self):
        """Section 4.1: had b and c used the same entanglement channels,
        the multiplication would compute 4-way entangled squares."""
        ctx = PbpContext(ways=4)
        b = ctx.pint_h(4, 0xF)
        squares = b * b
        assert sorted(squares.measure()) == sorted({e * e for e in range(16)})
        for e in range(16):
            assert squares.at(e) == e * e


class TestSignedViews:
    @staticmethod
    def _signed(v, width):
        return v - (1 << width) if v >> (width - 1) else v

    def test_negate(self):
        ctx = PbpContext(ways=4)
        a = ctx.pint_h(4, 0xF)
        n = a.negate()
        for e in range(16):
            assert n.at(e) == (-e) & 0xF

    def test_abs(self):
        ctx = PbpContext(ways=4)
        a = ctx.pint_h(4, 0xF)
        result = a.abs()
        for e in range(16):
            signed = self._signed(e, 4)
            assert result.at(e) == abs(signed) & 0xF  # -8 wraps to 8 = 0x8

    def test_sign_bit(self):
        ctx = PbpContext(ways=3)
        a = ctx.pint_h(3, 0b111)
        s = a.sign_bit()
        for e in range(8):
            assert s.at(e) == e >> 2

    def test_lt_signed(self):
        _, a, b = two_words()
        bit = a.lt_signed(b)
        for e, va, vb in channel_values(3):
            assert bit.at(e) == int(self._signed(va, 3) < self._signed(vb, 3))

    def test_lt_signed_mixed_width(self):
        ctx = PbpContext(ways=5)
        a = ctx.pint_h(3, 0b00111)  # 3-bit signed: -4..3
        b = ctx.pint_h(2, 0b11000)  # 2-bit signed: -2..1
        bit = a.lt_signed(b)
        for e in range(32):
            va = self._signed(e & 7, 3)
            vb = self._signed(e >> 3, 2)
            assert bit.at(e) == int(va < vb)

    def test_sign_extended(self):
        ctx = PbpContext(ways=3)
        a = ctx.pint_h(3, 0b111)
        wide = a.sign_extended(6)
        for e in range(8):
            assert self._signed(wide.at(e), 6) == self._signed(e, 3)

    def test_sign_extended_rejects_truncation(self):
        ctx = PbpContext(ways=3)
        with pytest.raises(EntanglementError):
            ctx.pint_h(3, 0b111).sign_extended(2)


class TestResize:
    def test_zero_extend(self):
        ctx = PbpContext(ways=3)
        a = ctx.pint_h(3, 0b111)
        wide = a.resized(6)
        for e in range(8):
            assert wide.at(e) == e

    def test_truncate(self):
        ctx = PbpContext(ways=3)
        a = ctx.pint_h(3, 0b111)
        narrow = a.resized(2)
        for e in range(8):
            assert narrow.at(e) == e & 3

    def test_bad_width(self):
        ctx = PbpContext(ways=3)
        with pytest.raises(ValueError):
            ctx.pint_mk(2, 1).resized(0)


class TestPatternBackendParity:
    @settings(max_examples=10)
    @given(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7))
    def test_same_results_both_backends(self, x, y):
        dense = PbpContext(ways=6, backend="aob")
        compressed = PbpContext(ways=6, backend="pattern", chunk_ways=6)
        results = []
        for ctx in (dense, compressed):
            a = ctx.pint_h(3, 0b000111)
            b = ctx.pint_h(3, 0b111000)
            p = (a * b).eq_const((x * y) & 63)
            results.append(sorted(p.bits[0].iter_ones()))
        assert results[0] == results[1]
